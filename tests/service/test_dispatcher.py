"""Dispatcher resilience: handshake failures, retries, quarantine.

Fault injection reuses the ``REPRO_FAULT_PLAN`` tripwires: service
workers evaluate the plan against their shard index and attempt
number, so a fault-free rerun of a faulted sweep must match bitwise
(the shard payloads are derived before dispatch, faults only affect
placement and retries).
"""

import os

import numpy as np
import pytest

from repro._rng import spawn
from repro.fleet import Fleet, faultinject
from repro.fleet.faultinject import FaultPlan, FaultSpec
from repro.fleet.resilience import PoisonedSweepError, RetryPolicy
from repro.keygen import SequentialPairingKeyGen
from repro.puf import ROArrayParams
from repro.service import (
    KIND_FAILURE,
    Dispatcher,
    PopulationSpec,
    ShardPlan,
    WorkerHandshakeError,
    submit_sweep,
)
from repro.service import dispatcher as dispatcher_module

PARAMS = ROArrayParams(rows=8, cols=16, sigma_noise=300e3)
SEED = 9
DEVICES = 4
TRIALS = 80


def keygen_factory():
    return SequentialPairingKeyGen(threshold=250e3)


def _exit_before_handshake(address, worker_id):
    os._exit(3)


@pytest.fixture()
def population():
    return PopulationSpec(params=PARAMS, devices=DEVICES, seed=SEED)


@pytest.fixture(scope="module")
def reference():
    manufacture_rng, enroll_rng = spawn(SEED, 2)
    fleet = Fleet(PARAMS, size=DEVICES, seed=manufacture_rng)
    enrollment = fleet.enroll(keygen_factory, seed=enroll_rng)
    return fleet.failure_rates(enrollment, trials=TRIALS)


def _policy(**kwargs):
    kwargs.setdefault("max_retries", 2)
    kwargs.setdefault("backoff_base", 0.01)
    return RetryPolicy(**kwargs)


class TestHandshake:
    def test_worker_death_before_handshake_is_an_error(
            self, monkeypatch):
        """A worker dying pre-handshake must raise, never hang."""
        monkeypatch.setattr(dispatcher_module, "worker_main",
                            _exit_before_handshake)
        dispatcher = Dispatcher(workers=2, handshake_timeout=10.0)
        plan = ShardPlan.plan(0, 4, 2)
        with pytest.raises(WorkerHandshakeError,
                           match="exited with code 3 before "
                                 "completing the handshake"):
            list(dispatcher.run(plan, KIND_FAILURE, [[], []]))

    def test_bad_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            Dispatcher(transport="carrier-pigeon")


class TestFaultRecovery:
    def test_crash_is_retried_and_bitwise_equal(self, population,
                                                reference):
        plan = FaultPlan(faults=(
            FaultSpec(chunk=1, mode="crash", attempts=(0,)),))
        with faultinject.activated(plan):
            handle = submit_sweep(population, keygen_factory,
                                  KIND_FAILURE, trials=TRIALS,
                                  shards=2, workers=2,
                                  policy=_policy())
            merged = handle.collect()
        np.testing.assert_array_equal(merged, reference)
        assert handle.report.verdict == "recovered"
        assert handle.report.retried == 1
        assert handle.report.failures[0].kind == "crash"

    def test_raise_is_retried_and_bitwise_equal(self, population,
                                                reference):
        plan = FaultPlan(faults=(
            FaultSpec(chunk=0, mode="raise", attempts=(0,)),))
        with faultinject.activated(plan):
            handle = submit_sweep(population, keygen_factory,
                                  KIND_FAILURE, trials=TRIALS,
                                  shards=2, workers=2,
                                  policy=_policy())
            merged = handle.collect()
        np.testing.assert_array_equal(merged, reference)
        assert handle.report.verdict == "recovered"
        assert handle.report.failures[0].kind == "exception"

    def test_hang_times_out_and_recovers(self, population,
                                         reference):
        plan = FaultPlan(faults=(
            FaultSpec(chunk=0, mode="hang", attempts=(0,)),))
        with faultinject.activated(plan):
            handle = submit_sweep(population, keygen_factory,
                                  KIND_FAILURE, trials=TRIALS,
                                  shards=2, workers=2,
                                  policy=_policy(chunk_timeout=3.0))
            merged = handle.collect()
        np.testing.assert_array_equal(merged, reference)
        assert handle.report.verdict == "recovered"
        assert handle.report.failures[0].kind == "timeout"

    def test_persistent_fault_degrades_in_dispatcher(
            self, population, reference):
        """Retries exhausted -> quarantine pass runs in-process."""
        plan = FaultPlan(faults=(
            FaultSpec(chunk=1, mode="raise", attempts=(0, 1, 2)),))
        with faultinject.activated(plan):
            handle = submit_sweep(population, keygen_factory,
                                  KIND_FAILURE, trials=TRIALS,
                                  shards=2, workers=2,
                                  policy=_policy())
            merged = handle.collect()
        np.testing.assert_array_equal(merged, reference)
        assert handle.report.verdict == "degraded"
        assert handle.report.degraded == [1]
        degraded = [r for r in handle.results if r.degraded]
        assert len(degraded) == 1
        assert degraded[0].shard.index == 1

    def test_poison_raises_unless_partial_allowed(self, population):
        # attempts cover the quarantine pass too: a true poison shard
        plan = FaultPlan(faults=(
            FaultSpec(chunk=0, mode="raise",
                      attempts=(0, 1, 2, 3)),))
        with faultinject.activated(plan):
            handle = submit_sweep(population, keygen_factory,
                                  KIND_FAILURE, trials=TRIALS,
                                  shards=2, workers=2,
                                  policy=_policy())
            with pytest.raises(PoisonedSweepError):
                handle.collect()

    def test_poison_zero_fills_with_allow_partial(self, population,
                                                  reference):
        plan = FaultPlan(faults=(
            FaultSpec(chunk=0, mode="raise",
                      attempts=(0, 1, 2, 3)),))
        with faultinject.activated(plan):
            handle = submit_sweep(population, keygen_factory,
                                  KIND_FAILURE, trials=TRIALS,
                                  shards=2, workers=2,
                                  policy=_policy(allow_partial=True))
            merged = handle.collect()
        assert handle.report.verdict == "partial"
        assert handle.report.poisoned == [0]
        plan_spec = handle.plan.shards[0]
        np.testing.assert_array_equal(
            merged[plan_spec.start:plan_spec.stop], 0.0)
        np.testing.assert_array_equal(
            merged[plan_spec.stop:], reference[plan_spec.stop:])
