"""Streaming sweeps: bitwise equality with single-host fleets.

The service's core contract: shard count, worker count, transport and
completion order are pure execution knobs — ``collect()`` must be
bitwise-identical to the matching ``Fleet`` sweep on a same-seed
fleet for every combination.
"""

import json

import numpy as np
import pytest

from repro._rng import spawn
from repro.core import SequentialPairingAttack
from repro.fleet import Fleet
from repro.keygen import SequentialPairingKeyGen
from repro.puf import ROArrayParams
from repro.service import (
    KIND_ATTACK,
    KIND_ATTACK_RESULTS,
    KIND_FAILURE,
    PopulationSpec,
    submit_sweep,
)

PARAMS = ROArrayParams(rows=8, cols=16, sigma_noise=300e3)
SEED = 21
DEVICES = 5


def keygen_factory():
    return SequentialPairingKeyGen(threshold=250e3)


def attack_factory(oracle, keygen, helper):
    return SequentialPairingAttack(oracle, keygen, helper)


@pytest.fixture(scope="module")
def population():
    return PopulationSpec(params=PARAMS, devices=DEVICES, seed=SEED)


def fresh_single_host():
    """A fresh same-seed fleet whose FIRST sweep is the reference.

    The service rebuilds its fleet per ``submit_sweep``, so every
    streamed sweep consumes first-sweep substreams; the single-host
    reference must do the same (a reused fleet's root RNG advances
    with each sweep).
    """
    manufacture_rng, enroll_rng = spawn(SEED, 2)
    fleet = Fleet(PARAMS, size=DEVICES, seed=manufacture_rng)
    enrollment = fleet.enroll(keygen_factory, seed=enroll_rng)
    return fleet, enrollment


class TestBitwiseEquality:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("transport", ["pipe", "tcp"])
    def test_failure_rates(self, population, shards, transport):
        fleet, enrollment = fresh_single_host()
        expected = fleet.failure_rates(enrollment, trials=150)
        handle = submit_sweep(population, keygen_factory,
                              KIND_FAILURE, trials=150,
                              shards=shards, workers=2,
                              transport=transport)
        np.testing.assert_array_equal(handle.collect(), expected)
        assert handle.report.verdict == "clean"

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_attack_success(self, population, shards):
        fleet, enrollment = fresh_single_host()
        recovered, queries = fleet.attack_success(enrollment,
                                                  attack_factory)
        handle = submit_sweep(population, keygen_factory, KIND_ATTACK,
                              attack_factory=attack_factory,
                              shards=shards, workers=2)
        got_recovered, got_queries = handle.collect()
        np.testing.assert_array_equal(got_recovered, recovered)
        np.testing.assert_array_equal(got_queries, queries)

    def test_attack_results(self, population):
        fleet, enrollment = fresh_single_host()
        expected = fleet.attack_results(enrollment, attack_factory)
        handle = submit_sweep(population, keygen_factory,
                              KIND_ATTACK_RESULTS,
                              attack_factory=attack_factory,
                              shards=2, workers=2)
        results = handle.collect()
        assert len(results) == len(expected)
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got.relations,
                                          want.relations)
            np.testing.assert_array_equal(got.key, want.key)
            assert got.queries == want.queries


class TestStreamingSurface:
    def test_in_order_replays_shard_order(self, population):
        handle = submit_sweep(population, keygen_factory,
                              KIND_FAILURE, trials=60, shards=4,
                              workers=2)
        indices = [result.shard.index
                   for result in handle.in_order()]
        assert indices == [0, 1, 2, 3]

    def test_on_chunk_sees_every_arrival(self, population):
        handle = submit_sweep(population, keygen_factory,
                              KIND_FAILURE, trials=60, shards=4,
                              workers=2)
        seen = []
        handle.on_chunk(lambda result: seen.append(
            result.shard.index))
        handle.drain()
        assert sorted(seen) == [0, 1, 2, 3]

    def test_chunks_are_ndjson_serialisable(self, population):
        handle = submit_sweep(population, keygen_factory,
                              KIND_FAILURE, trials=60, shards=2,
                              workers=2)
        for result in handle:
            line = json.dumps(result.to_json(), sort_keys=True)
            decoded = json.loads(line)
            assert decoded["kind"] == KIND_FAILURE
            assert decoded["stop"] - decoded["start"] == \
                len(decoded["rates"])

    def test_collect_after_partial_iteration(self, population):
        fleet, enrollment = fresh_single_host()
        expected = fleet.failure_rates(enrollment, trials=60)
        handle = submit_sweep(population, keygen_factory,
                              KIND_FAILURE, trials=60, shards=4,
                              workers=2)
        next(iter(handle))  # consume one chunk by hand
        np.testing.assert_array_equal(handle.collect(), expected)

    def test_enrollment_source_marks_fresh_enrollment(
            self, population):
        handle = submit_sweep(population, keygen_factory,
                              KIND_FAILURE, trials=30, shards=2,
                              workers=1)
        handle.collect()
        assert handle.enrollment_source == "enrolled"


class TestValidation:
    def test_unknown_kind(self, population):
        with pytest.raises(ValueError, match="unknown sweep kind"):
            submit_sweep(population, keygen_factory, "bogus")

    def test_failure_needs_trials(self, population):
        with pytest.raises(ValueError, match="trials"):
            submit_sweep(population, keygen_factory, KIND_FAILURE)

    def test_attack_needs_factory(self, population):
        with pytest.raises(ValueError, match="attack_factory"):
            submit_sweep(population, keygen_factory, KIND_ATTACK,
                         trials=10)

    def test_population_needs_devices(self):
        with pytest.raises(ValueError):
            PopulationSpec(params=PARAMS, devices=0, seed=0)
