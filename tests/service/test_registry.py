"""Enrollment registry: round-trips, tampering, skip-enrollment.

The registry's two contracts under test:

* every scheme family's helpers/keys survive the on-disk round trip
  byte-for-byte (the store reuses the strict §VII-C containers);
* a registry-backed sweep never calls ``keygen.enroll`` and is still
  bitwise-identical to a sweep that enrolled fresh.
"""

import numpy as np
import pytest

from repro._rng import spawn
from repro.fleet import Fleet
from repro.keygen import SequentialPairingKeyGen
from repro.puf import ROArrayParams
from repro.serialization import dump_helper
from repro.service import (
    KIND_FAILURE,
    EnrollmentRegistry,
    PopulationSpec,
    RegistryError,
    enroll_population,
    submit_sweep,
)
from repro.service.cli import SCHEME_DEFAULTS, scheme_keygen_factory

SEED = 17
DEVICES = 3


def _population(scheme):
    rows, cols, sigma = SCHEME_DEFAULTS[scheme]
    params = ROArrayParams(rows=rows, cols=cols, sigma_noise=sigma)
    return PopulationSpec(params=params, devices=DEVICES, seed=SEED)


def _fresh_enrollment(population, factory):
    manufacture_rng, enroll_rng = spawn(population.seed, 2)
    fleet = Fleet(population.params, size=population.devices,
                  seed=manufacture_rng)
    return fleet.enroll(factory, seed=enroll_rng)


class TestRoundTrips:
    @pytest.mark.parametrize("scheme", sorted(SCHEME_DEFAULTS))
    def test_all_schemes_round_trip_bitwise(self, scheme, tmp_path):
        population = _population(scheme)
        rows, cols = (population.params.rows,
                      population.params.cols)
        factory = scheme_keygen_factory(scheme, rows, cols)
        registry = enroll_population(tmp_path / scheme, population,
                                     factory, scheme)
        assert registry.enrolled == DEVICES
        expected = _fresh_enrollment(population, factory)
        loaded = registry.load_enrollment(factory)
        for got_helper, want_helper in zip(loaded.helpers,
                                           expected.helpers):
            assert dump_helper(got_helper) == \
                dump_helper(want_helper)
        for got_key, want_key in zip(loaded.keys, expected.keys):
            np.testing.assert_array_equal(got_key, want_key)

    def test_manifest_identity_survives_reopen(self, tmp_path):
        population = _population("sequential")
        factory = scheme_keygen_factory("sequential", 8, 16)
        enroll_population(tmp_path / "reg", population, factory,
                          "sequential")
        reopened = EnrollmentRegistry.open(tmp_path / "reg")
        assert reopened.scheme == "sequential"
        assert reopened.population_seed == SEED
        assert reopened.devices == DEVICES
        assert reopened.params == population.params
        reopened.verify_population(population)


class TestTampering:
    @pytest.fixture()
    def registry_path(self, tmp_path):
        population = _population("sequential")
        factory = scheme_keygen_factory("sequential", 8, 16)
        enroll_population(tmp_path / "reg", population, factory,
                          "sequential")
        return tmp_path / "reg"

    def test_flipped_helper_byte_is_rejected(self, registry_path):
        registry = EnrollmentRegistry.open(registry_path)
        entry = registry._manifest["entries"][1]
        blob_file = registry_path / "helpers.bin"
        data = bytearray(blob_file.read_bytes())
        data[entry["helper_offset"] + 5] ^= 0xFF
        blob_file.write_bytes(bytes(data))
        with pytest.raises(RegistryError,
                           match="device 1 helper digest mismatch"):
            registry.load(1)

    def test_flipped_key_byte_is_rejected(self, registry_path):
        registry = EnrollmentRegistry.open(registry_path)
        entry = registry._manifest["entries"][0]
        blob_file = registry_path / "keys.bin"
        data = bytearray(blob_file.read_bytes())
        data[entry["key_offset"] + 5] ^= 0xFF
        blob_file.write_bytes(bytes(data))
        with pytest.raises(RegistryError,
                           match="device 0 key digest mismatch"):
            registry.load(0)

    def test_truncated_blob_file_is_rejected(self, registry_path):
        registry = EnrollmentRegistry.open(registry_path)
        blob_file = registry_path / "helpers.bin"
        blob_file.write_bytes(blob_file.read_bytes()[:10])
        with pytest.raises(RegistryError, match="truncated"):
            registry.load(2)


class TestPopulationMismatch:
    @pytest.fixture()
    def registry(self, tmp_path):
        population = _population("sequential")
        factory = scheme_keygen_factory("sequential", 8, 16)
        return enroll_population(tmp_path / "reg", population,
                                 factory, "sequential")

    def test_seed_mismatch(self, registry):
        population = _population("sequential")
        other = PopulationSpec(params=population.params,
                               devices=DEVICES, seed=SEED + 1)
        with pytest.raises(RegistryError, match="seed"):
            registry.verify_population(other)

    def test_device_count_mismatch(self, registry):
        population = _population("sequential")
        other = PopulationSpec(params=population.params,
                               devices=DEVICES + 1, seed=SEED)
        with pytest.raises(RegistryError, match="devices"):
            registry.verify_population(other)

    def test_params_mismatch(self, registry):
        params = ROArrayParams(rows=8, cols=16, sigma_noise=1.0)
        other = PopulationSpec(params=params, devices=DEVICES,
                               seed=SEED)
        with pytest.raises(RegistryError, match="parameters"):
            registry.verify_population(other)


class TestLifecycleErrors:
    def test_create_refuses_existing_registry(self, tmp_path):
        params = _population("sequential").params
        EnrollmentRegistry.create(tmp_path / "reg", SEED,
                                  "sequential", params, DEVICES)
        with pytest.raises(RegistryError, match="already exists"):
            EnrollmentRegistry.create(tmp_path / "reg", SEED,
                                      "sequential", params, DEVICES)

    def test_open_missing_registry(self, tmp_path):
        with pytest.raises(RegistryError, match="no registry"):
            EnrollmentRegistry.open(tmp_path / "nope")

    def test_incomplete_registry_refuses_load(self, tmp_path):
        population = _population("sequential")
        factory = scheme_keygen_factory("sequential", 8, 16)
        enrollment = _fresh_enrollment(population, factory)
        registry = EnrollmentRegistry.create(
            tmp_path / "reg", SEED, "sequential", population.params,
            DEVICES)
        registry.append(enrollment.helpers[0], enrollment.keys[0])
        with pytest.raises(RegistryError, match="1 of 3"):
            registry.load_enrollment(factory)

    def test_append_beyond_population_refused(self, tmp_path):
        population = _population("sequential")
        factory = scheme_keygen_factory("sequential", 8, 16)
        registry = enroll_population(tmp_path / "reg", population,
                                     factory, "sequential")
        enrollment = _fresh_enrollment(population, factory)
        with pytest.raises(RegistryError, match="already holds"):
            registry.append(enrollment.helpers[0],
                            enrollment.keys[0])

    def test_load_out_of_range_device(self, tmp_path):
        population = _population("sequential")
        factory = scheme_keygen_factory("sequential", 8, 16)
        registry = enroll_population(tmp_path / "reg", population,
                                     factory, "sequential")
        with pytest.raises(RegistryError, match="not in the"):
            registry.load(DEVICES)


class TestSkipEnrollment:
    def test_registry_sweep_never_enrolls_and_matches(
            self, tmp_path, monkeypatch):
        """Registry sweeps skip enrollment, bitwise-identically."""
        population = _population("sequential")
        factory = scheme_keygen_factory("sequential", 8, 16)
        registry = enroll_population(tmp_path / "reg", population,
                                     factory, "sequential")

        fresh = submit_sweep(population, factory, KIND_FAILURE,
                             trials=120, shards=2, workers=2)
        expected = fresh.collect()
        assert fresh.enrollment_source == "enrolled"

        def _no_enrollment_allowed(self, *args, **kwargs):
            raise AssertionError(
                "registry-backed sweep called keygen.enroll")

        monkeypatch.setattr(SequentialPairingKeyGen, "enroll",
                            _no_enrollment_allowed)
        handle = submit_sweep(population, factory, KIND_FAILURE,
                              trials=120, shards=2, workers=2,
                              registry=registry)
        merged = handle.collect()
        assert handle.enrollment_source == "registry"
        np.testing.assert_array_equal(merged, expected)
