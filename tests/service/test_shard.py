"""Shard plans: determinism, geometry, and merge semantics."""

import numpy as np
import pytest

from repro.service import (
    ShardPlan,
    merge_attack,
    merge_attack_results,
    merge_failure_rates,
    shard_digest,
)


class TestPlanDeterminism:
    def test_pure_function_of_inputs(self):
        first = ShardPlan.plan(42, 10, 3)
        second = ShardPlan.plan(42, 10, 3)
        assert first == second
        assert [s.digest for s in first.shards] == \
            [s.digest for s in second.shards]

    def test_digest_depends_on_seed_and_range_only(self):
        assert shard_digest(1, 0, 0, 5) != shard_digest(2, 0, 0, 5)
        assert shard_digest(1, 0, 0, 5) != shard_digest(1, 0, 0, 6)
        assert shard_digest(1, 0, 0, 5) == shard_digest(1, 0, 0, 5)

    def test_digests_differ_across_shards(self):
        plan = ShardPlan.plan(0, 12, 4)
        digests = {s.digest for s in plan.shards}
        assert len(digests) == len(plan)


class TestPlanGeometry:
    def test_spans_cover_population_contiguously(self):
        for devices, shards in ((1, 1), (5, 2), (12, 4), (7, 16)):
            plan = ShardPlan.plan(0, devices, shards)
            flat = [d for start, stop in plan.spans
                    for d in range(start, stop)]
            assert flat == list(range(devices))

    def test_shard_count_capped_at_devices(self):
        plan = ShardPlan.plan(0, 3, 16)
        assert len(plan) == 3
        assert all(s.devices == 1 for s in plan.shards)

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            ShardPlan.plan(0, 0, 2)
        with pytest.raises(ValueError):
            ShardPlan.plan(0, 4, 0)

    def test_slice_jobs_follows_spans(self):
        plan = ShardPlan.plan(0, 5, 2)
        sliced = plan.slice_jobs(["a", "b", "c", "d", "e"])
        assert [len(block) for block in sliced] == \
            [s.devices for s in plan.shards]
        assert sum(sliced, []) == ["a", "b", "c", "d", "e"]

    def test_slice_jobs_validates_length(self):
        plan = ShardPlan.plan(0, 5, 2)
        with pytest.raises(ValueError):
            plan.slice_jobs(["a", "b"])


class TestMerging:
    def test_failure_rates_concatenate_in_shard_order(self):
        plan = ShardPlan.plan(0, 5, 2)
        datas = [{"rates": np.array([0.1, 0.2, 0.3])},
                 {"rates": np.array([0.4, 0.5])}]
        merged = merge_failure_rates(plan, datas)
        np.testing.assert_array_equal(
            merged, [0.1, 0.2, 0.3, 0.4, 0.5])
        assert merged.dtype == np.float64

    def test_poisoned_shard_zero_fills(self):
        plan = ShardPlan.plan(0, 5, 2)
        merged = merge_failure_rates(
            plan, [None, {"rates": np.array([0.4, 0.5])}])
        np.testing.assert_array_equal(merged,
                                      [0.0, 0.0, 0.0, 0.4, 0.5])

    def test_attack_merge_dtypes(self):
        plan = ShardPlan.plan(0, 4, 2)
        datas = [{"recovered": np.array([True, False]),
                  "queries": np.array([10, 20])}, None]
        recovered, queries = merge_attack(plan, datas)
        assert recovered.dtype == np.bool_
        assert queries.dtype == np.int64
        np.testing.assert_array_equal(recovered,
                                      [True, False, False, False])
        np.testing.assert_array_equal(queries, [10, 20, 0, 0])

    def test_attack_results_merge(self):
        plan = ShardPlan.plan(0, 4, 2)
        merged = merge_attack_results(
            plan, [{"results": ["r0", "r1"]}, None])
        assert merged == ["r0", "r1", None, None]
