"""``repro service`` CLI: enroll/sweep wiring and exit codes."""

import json

from repro.cli import main


class TestEnrollAndSweep:
    def test_enroll_then_registry_sweep_streams_and_checks(
            self, tmp_path, capsys):
        registry = tmp_path / "reg"
        assert main(["service", "enroll", "--scheme", "sequential",
                     "--devices", "3", "--seed", "5",
                     "--registry", str(registry)]) == 0
        assert (registry / "manifest.json").exists()
        capsys.readouterr()

        assert main(["service", "sweep", "--registry", str(registry),
                     "--trials", "60", "--shards", "2",
                     "--workers", "2", "--stream",
                     "--check-single-host"]) == 0
        out = capsys.readouterr().out
        assert "enrollment source: registry" in out
        assert "single-host check: bitwise-identical" in out
        chunks = [json.loads(line) for line in out.splitlines()
                  if line.startswith("{")]
        assert len(chunks) == 2
        assert {chunk["shard"] for chunk in chunks} == {0, 1}
        assert all(chunk["kind"] == "failure-rates"
                   for chunk in chunks)

    def test_fresh_sweep_without_registry(self, capsys):
        assert main(["service", "sweep", "--scheme", "sequential",
                     "--devices", "3", "--trials", "40",
                     "--shards", "2", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "enrollment source: enrolled" in out
        assert "failure rates:" in out

    def test_attack_sweep_reports_recoveries(self, capsys):
        assert main(["service", "sweep", "--scheme", "group-based",
                     "--devices", "2", "--kind", "attack",
                     "--shards", "2", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "keys recovered" in out


class TestArgumentErrors:
    def test_registry_conflicts_with_population_flags(
            self, tmp_path, capsys):
        registry = tmp_path / "reg"
        assert main(["service", "enroll", "--scheme", "sequential",
                     "--devices", "2",
                     "--registry", str(registry)]) == 0
        capsys.readouterr()
        assert main(["service", "sweep", "--registry", str(registry),
                     "--scheme", "sequential"]) == 2
        assert "conflicts with --registry" in capsys.readouterr().out

    def test_sweep_needs_scheme_or_registry(self, capsys):
        assert main(["service", "sweep"]) == 2
        assert "need --scheme" in capsys.readouterr().out

    def test_missing_registry_is_an_error(self, tmp_path, capsys):
        assert main(["service", "sweep", "--registry",
                     str(tmp_path / "nope")]) == 2
        assert "no registry manifest" in capsys.readouterr().out

    def test_fuzzy_attack_sweep_rejected(self, capsys):
        assert main(["service", "sweep", "--scheme", "fuzzy",
                     "--devices", "2", "--kind", "attack"]) == 2
        assert "no attack campaign" in capsys.readouterr().out
