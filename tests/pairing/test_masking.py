"""Tests for 1-out-of-k masking (paper §IV-B)."""

import numpy as np
import pytest

from repro.pairing import (
    MaskingHelper,
    OneOutOfKMasking,
    neighbor_chain_pairs,
    pair_deltas,
)


@pytest.fixture
def scheme():
    return OneOutOfKMasking(neighbor_chain_pairs(4, 10), k=5)


@pytest.fixture
def freqs(small_array):
    return small_array.true_frequencies()


class TestHelper:
    def test_selection_bounds_enforced(self):
        with pytest.raises(ValueError):
            MaskingHelper(5, (5,))
        with pytest.raises(ValueError):
            MaskingHelper(0, ())

    def test_with_selection_replaces_one_group(self):
        helper = MaskingHelper(5, (0, 1, 2, 3))
        new = helper.with_selection(2, 4)
        assert new.selected == (0, 1, 4, 3)
        assert helper.selected == (0, 1, 2, 3)

    def test_with_selection_bounds(self):
        helper = MaskingHelper(3, (0, 0))
        with pytest.raises(IndexError):
            helper.with_selection(2, 0)


class TestEnrollment:
    def test_group_count(self, scheme):
        assert scheme.groups == 4  # 20 pairs / k=5

    def test_enrollment_selects_max_discrepancy(self, scheme, freqs):
        helper, _ = scheme.enroll(freqs)
        deltas = np.abs(pair_deltas(freqs, scheme.base_pairs))
        for group, chosen in enumerate(helper.selected):
            window = deltas[group * 5:(group + 1) * 5]
            assert window[chosen] == window.max()

    def test_enrolled_bits_match_evaluation(self, scheme, freqs):
        helper, bits = scheme.enroll(freqs)
        np.testing.assert_array_equal(scheme.evaluate(freqs, helper),
                                      bits)

    def test_selected_pairs_reliability_dominates(self, scheme, freqs):
        # The enrolled selection has, per group, at least the median
        # reliability of its candidates (it is the argmax).
        helper, _ = scheme.enroll(freqs)
        deltas = np.abs(pair_deltas(freqs, scheme.base_pairs))
        selected = np.abs(pair_deltas(freqs,
                                      scheme.selected_pairs(helper)))
        assert selected.mean() >= deltas.mean()


class TestManipulation:
    def test_selection_change_switches_pair(self, scheme, freqs):
        helper, _ = scheme.enroll(freqs)
        alternative = (helper.selected[0] + 1) % 5
        manipulated = helper.with_selection(0, alternative)
        assert (scheme.selected_pairs(manipulated)[0]
                != scheme.selected_pairs(helper)[0])

    def test_manipulated_bits_follow_new_pair(self, scheme, freqs):
        helper, bits = scheme.enroll(freqs)
        manipulated = helper.with_selection(
            0, (helper.selected[0] + 1) % 5)
        new_bits = scheme.evaluate(freqs, manipulated)
        np.testing.assert_array_equal(new_bits[1:], bits[1:])

    def test_wrong_helper_size_rejected(self, scheme, freqs):
        with pytest.raises(ValueError):
            scheme.evaluate(freqs, MaskingHelper(5, (0, 0)))


class TestConstruction:
    def test_requires_full_group(self):
        with pytest.raises(ValueError):
            OneOutOfKMasking([(0, 1)], k=5)

    def test_trailing_partial_group_dropped(self):
        pairs = neighbor_chain_pairs(3, 4)  # 6 pairs
        scheme = OneOutOfKMasking(pairs, k=4)
        assert scheme.groups == 1

    def test_group_pairs_slicing(self, scheme):
        group = scheme.group_pairs(1)
        assert group == scheme.base_pairs[5:10]
        with pytest.raises(IndexError):
            scheme.group_pairs(4)
