"""Tests for the temperature-aware cooperative scheme (paper §IV-D)."""

import numpy as np
import pytest

from repro.pairing import (
    PairClass,
    TempAwareCooperative,
    classify_pair,
    deterministic_selection_leakage,
)


class TestClassification:
    def test_good_pair(self):
        profile = classify_pair((0, 1), delta_min=5e5, delta_max=4e5,
                                t_min=0, t_max=80, threshold=1e5)
        assert profile.kind is PairClass.GOOD

    def test_bad_pair(self):
        profile = classify_pair((0, 1), delta_min=5e4, delta_max=-5e4,
                                t_min=0, t_max=80, threshold=1e5)
        assert profile.kind is PairClass.BAD

    def test_cooperating_pair_interval_brackets_crossover(self):
        profile = classify_pair((0, 1), delta_min=4e5, delta_max=-4e5,
                                t_min=0, t_max=80, threshold=1e5)
        assert profile.kind is PairClass.COOPERATING
        assert profile.t_low < profile.crossover < profile.t_high
        assert 0 <= profile.t_low and profile.t_high <= 80
        # |delta| == threshold exactly at the interval boundaries
        assert abs(profile.delta_at(profile.t_low)) == \
            pytest.approx(1e5, rel=1e-9)
        assert abs(profile.delta_at(profile.t_high)) == \
            pytest.approx(1e5, rel=1e-9)

    def test_marginal_pair_without_in_range_crossover(self):
        # Enters the unreliable band near t_max but never crosses zero.
        profile = classify_pair((0, 1), delta_min=6e5, delta_max=5e4,
                                t_min=0, t_max=80, threshold=1e5)
        assert profile.kind is PairClass.MARGINAL

    def test_reference_bit_is_low_temperature_sign(self):
        positive = classify_pair((0, 1), 4e5, -4e5, 0, 80, 1e5)
        negative = classify_pair((0, 1), -4e5, 4e5, 0, 80, 1e5)
        assert positive.reference_bit(0) == 1
        assert negative.reference_bit(0) == 0

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            classify_pair((0, 1), 0.0, 0.0, 80, 0, 1e5)
        with pytest.raises(ValueError):
            classify_pair((0, 1), 0.0, 0.0, 0, 80, 0.0)


@pytest.fixture
def scheme():
    return TempAwareCooperative(t_min=-10, t_max=80, threshold=150e3)


class TestEnrollment:
    def test_classification_population(self, scheme, thermal_array):
        profiles = scheme.profile_pairs(thermal_array, rng=3)
        kinds = {p.kind for p in profiles}
        assert PairClass.GOOD in kinds
        assert PairClass.COOPERATING in kinds

    def test_key_bits_match_reference_bits(self, scheme, thermal_array):
        helper, key = scheme.enroll(thermal_array, rng=3)
        profiles = scheme.profile_pairs(thermal_array, rng=3)
        assert key.size == helper.bits

    def test_assistants_satisfy_masking_constraint(self, scheme,
                                                   thermal_array):
        helper, _ = scheme.enroll(thermal_array, rng=3)
        profiles = scheme.profile_pairs(thermal_array, rng=3)
        for entry in helper.cooperation:
            r_c = profiles[entry.pair_index].reference_bit(-10)
            r_g = profiles[entry.good_index].reference_bit(-10)
            r_a = profiles[entry.assist_index].reference_bit(-10)
            assert r_c ^ r_g == r_a

    def test_assistant_intervals_never_intersect(self, scheme,
                                                 thermal_array):
        helper, _ = scheme.enroll(thermal_array, rng=3)
        entry_of = {e.pair_index: e for e in helper.cooperation}
        for entry in helper.cooperation:
            assistant = entry_of[entry.assist_index]
            assert (entry.t_high < assistant.t_low
                    or assistant.t_high < entry.t_low)

    def test_invalid_selection_policy_rejected(self):
        with pytest.raises(ValueError):
            TempAwareCooperative(0, 80, 1e5, selection="greedy")


class TestReconstruction:
    def test_stable_across_operating_range(self, scheme, thermal_array):
        helper, key = scheme.enroll(thermal_array, rng=3)
        for temperature in (-5.0, 20.0, 45.0, 75.0):
            freqs = thermal_array.measure_frequencies(
                temperature=temperature)
            bits = scheme.evaluate(freqs, helper, temperature)
            # ECC-free reconstruction: allow a stray noise flip.
            assert np.mean(bits == key) >= 0.95

    def test_crossover_compensation_inverts_bit(self, scheme,
                                                thermal_array):
        helper, key = scheme.enroll(thermal_array, rng=3)
        entry = helper.cooperation[0]
        a, b = helper.pairs[entry.pair_index]
        # Below the interval the measured bit is the reference; above it
        # the raw comparison is inverted but the evaluation compensates.
        for temperature in (entry.t_low - 3.0, entry.t_high + 3.0):
            if not -10 <= temperature <= 80:
                continue
            freqs = thermal_array.true_frequencies(
                temperature=temperature)
            bits = scheme.evaluate(freqs, helper, temperature)
            position = (len(helper.good_indices)
                        + 0)  # first cooperation record
            assert bits[position] == key[position]

    def test_assistance_cycle_rejected(self, scheme, thermal_array):
        helper, _ = scheme.enroll(thermal_array, rng=3)
        entry = helper.cooperation[0]
        entry_of = {e.pair_index: e for e in helper.cooperation}
        assistant_entry = entry_of[entry.assist_index]
        position = helper.cooperation.index(assistant_entry)
        # Force the assistant's interval to cover the target's midpoint
        # and its assistant back to the target: a manipulation loop.
        mid = (entry.t_low + entry.t_high) / 2
        looped = helper.replace_entry(
            position, assistant_entry.with_interval(mid - 1, mid + 1)
            .with_assist(entry.pair_index))
        looped = looped.replace_entry(
            looped.cooperation.index(
                next(e for e in looped.cooperation
                     if e.pair_index == entry.pair_index)),
            entry.with_assist(assistant_entry.pair_index))
        freqs = thermal_array.true_frequencies(temperature=mid)
        with pytest.raises(ValueError):
            scheme.evaluate(freqs, looped, mid)

    def test_dangling_assistant_rejected(self, scheme, thermal_array):
        helper, _ = scheme.enroll(thermal_array, rng=3)
        entry = helper.cooperation[0]
        bad = helper.replace_entry(0, entry.with_assist(
            helper.good_indices[0]))
        mid = (entry.t_low + entry.t_high) / 2
        freqs = thermal_array.true_frequencies(temperature=mid)
        with pytest.raises(ValueError):
            scheme.evaluate(freqs, bad, mid)


class TestDeterministicLeakage:
    def test_leaked_relations_are_correct(self, thermal_array):
        scheme = TempAwareCooperative(t_min=-10, t_max=80,
                                      threshold=150e3,
                                      selection="deterministic")
        helper, _ = scheme.enroll(thermal_array, rng=3)
        profiles = scheme.profile_pairs(thermal_array, rng=3)
        leaks = deterministic_selection_leakage(helper, profiles)
        assert leaks, "deterministic selection produced no skips"
        for _, skipped, selected in leaks:
            r_skipped = profiles[skipped].reference_bit(-10)
            r_selected = profiles[selected].reference_bit(-10)
            assert r_skipped != r_selected

    def test_randomized_selection_varies_with_seed(self, thermal_array):
        scheme = TempAwareCooperative(t_min=-10, t_max=80,
                                      threshold=150e3)
        helper_a, _ = scheme.enroll(thermal_array, rng=3)
        helper_b, _ = scheme.enroll(thermal_array, rng=4)
        assists_a = [e.assist_index for e in helper_a.cooperation]
        assists_b = [e.assist_index for e in helper_b.cooperation]
        assert assists_a != assists_b
