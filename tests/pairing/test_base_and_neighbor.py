"""Tests for pair primitives and chain-of-neighbours selection."""

import numpy as np
import pytest

from repro.pairing import (
    neighbor_chain_pairs,
    orient_pairs,
    pair_deltas,
    response_bits,
    snake_order,
    validate_pairs,
)


class TestValidatePairs:
    def test_accepts_disjoint_pairs(self):
        pairs = validate_pairs([(0, 1), (2, 3)], 4)
        assert pairs == [(0, 1), (2, 3)]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_pairs([(0, 4)], 4)

    def test_rejects_self_pairing(self):
        with pytest.raises(ValueError):
            validate_pairs([(2, 2)], 4)

    def test_rejects_reuse_by_default(self):
        # The §VII-C sanity check: RO re-use across pairs must be
        # prohibited by the device.
        with pytest.raises(ValueError):
            validate_pairs([(0, 1), (1, 2)], 4)

    def test_reuse_allowed_when_opted_in(self):
        pairs = validate_pairs([(0, 1), (1, 2)], 4, allow_reuse=True)
        assert len(pairs) == 2

    def test_rejects_malformed_pair(self):
        with pytest.raises(ValueError):
            validate_pairs([(0, 1, 2)], 4)


class TestResponseBits:
    def test_comparator_convention(self):
        freqs = np.array([10.0, 20.0, 30.0])
        bits = response_bits(freqs, [(1, 0), (0, 1), (2, 1)])
        np.testing.assert_array_equal(bits, [1, 0, 1])

    def test_tie_resolves_to_one(self):
        freqs = np.array([5.0, 5.0])
        assert response_bits(freqs, [(0, 1)])[0] == 1

    def test_deltas_signed(self):
        freqs = np.array([10.0, 25.0])
        np.testing.assert_allclose(
            pair_deltas(freqs, [(0, 1), (1, 0)]), [-15.0, 15.0])


class TestOrientation:
    def test_sorted_policy_puts_faster_first(self):
        freqs = np.array([1.0, 9.0, 5.0, 3.0])
        oriented = orient_pairs([(0, 1), (2, 3)], freqs, "sorted")
        assert oriented == [(1, 0), (2, 3)]
        assert response_bits(freqs, oriented).tolist() == [1, 1]

    def test_randomized_policy_mixes_orientations(self, rng):
        freqs = np.arange(200.0)
        pairs = [(2 * i, 2 * i + 1) for i in range(100)]
        oriented = orient_pairs(pairs, freqs, "randomized", rng)
        bits = response_bits(freqs, oriented)
        assert 20 < bits.sum() < 80

    def test_randomized_requires_rng(self):
        with pytest.raises(ValueError):
            orient_pairs([(0, 1)], np.array([1.0, 2.0]), "randomized")

    def test_as_is_keeps_order(self):
        freqs = np.array([1.0, 2.0])
        assert orient_pairs([(1, 0)], freqs, "as-is") == [(1, 0)]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            orient_pairs([(0, 1)], np.array([1.0, 2.0]), "bogus")


class TestSnakeOrder:
    def test_small_grid_layout(self):
        # 2 x 3 grid: row 0 left-to-right, row 1 right-to-left.
        np.testing.assert_array_equal(snake_order(2, 3),
                                      [0, 1, 2, 5, 4, 3])

    def test_is_a_permutation(self):
        order = snake_order(5, 7)
        assert sorted(order.tolist()) == list(range(35))

    def test_consecutive_entries_are_adjacent(self):
        order = snake_order(4, 10)
        for a, b in zip(order[:-1], order[1:]):
            ax, ay = a % 10, a // 10
            bx, by = b % 10, b // 10
            assert abs(ax - bx) + abs(ay - by) == 1

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            snake_order(0, 3)


class TestNeighborChains:
    def test_disjoint_count_and_disjointness(self):
        pairs = neighbor_chain_pairs(4, 10, overlap=False)
        assert len(pairs) == 20
        validate_pairs(pairs, 40)  # raises on re-use

    def test_overlap_count_and_sharing(self):
        pairs = neighbor_chain_pairs(4, 10, overlap=True)
        assert len(pairs) == 39
        # every interior oscillator appears in exactly two pairs
        flat = [ro for pair in pairs for ro in pair]
        counts = np.bincount(flat, minlength=40)
        assert (counts == 2).sum() == 38
        assert (counts == 1).sum() == 2

    def test_pairs_are_physical_neighbours(self):
        for overlap in (False, True):
            for a, b in neighbor_chain_pairs(3, 5, overlap=overlap):
                ax, ay = a % 5, a // 5
                bx, by = b % 5, b // 5
                assert abs(ax - bx) + abs(ay - by) == 1

    def test_odd_cell_count_drops_last(self):
        pairs = neighbor_chain_pairs(3, 3, overlap=False)
        assert len(pairs) == 4  # floor(9 / 2)
