"""Tests for the sequential pairing algorithm (paper §IV-C, Alg. 1)."""

import numpy as np
import pytest

from repro.pairing import (
    SequentialPairing,
    SequentialPairingHelper,
    run_sequential_pairing,
)


class TestAlgorithm1:
    def test_all_pairs_exceed_threshold(self, rng):
        freqs = rng.normal(200e6, 1e6, 64)
        threshold = 500e3
        pairs = run_sequential_pairing(freqs, threshold)
        for a, b in pairs:
            assert freqs[a] - freqs[b] > threshold

    def test_pairs_are_disjoint(self, rng):
        freqs = rng.normal(200e6, 1e6, 64)
        pairs = run_sequential_pairing(freqs, 300e3)
        flat = [ro for pair in pairs for ro in pair]
        assert len(flat) == len(set(flat))

    def test_at_most_half_pairs(self, rng):
        for n in (10, 11, 64):
            freqs = rng.normal(0.0, 1.0, n)
            pairs = run_sequential_pairing(freqs, 0.0)
            assert len(pairs) <= n // 2

    def test_zero_threshold_pairs_everything(self, rng):
        # With distinct frequencies and threshold 0, the top half pairs
        # fully against the bottom half.
        freqs = rng.permutation(np.arange(20, dtype=float))
        pairs = run_sequential_pairing(freqs, 0.0)
        assert len(pairs) == 10

    def test_matches_paper_walkthrough(self):
        # Hand-checkable instance: frequencies 9..0, threshold 4.5.
        # Descending order is indices as-is; j runs over the bottom
        # half (values 4, 3, 2, 1, 0) against i = 0, 1, ... :
        #   9 - 4 = 5   > 4.5 -> pair (9, 4)
        #   8 - 3 = 5   > 4.5 -> pair (8, 3)
        #   7 - 2 = 5   > 4.5 -> pair (7, 2)
        #   6 - 1 = 5   > 4.5 -> pair (6, 1)
        #   5 - 0 = 5   > 4.5 -> pair (5, 0)
        freqs = np.arange(9.0, -1.0, -1.0)
        pairs = run_sequential_pairing(freqs, 4.5)
        assert pairs == [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)]

    def test_huge_threshold_selects_nothing(self, rng):
        freqs = rng.normal(0.0, 1.0, 32)
        assert run_sequential_pairing(freqs, 1e9) == []

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            run_sequential_pairing(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            run_sequential_pairing(np.array([1.0, 2.0]), -1.0)


class TestStoragePolicies:
    def test_sorted_storage_leaks_all_ones(self, rng):
        # Paper §VII-C: sorted pair order -> every response bit is 1 and
        # a read-only attacker learns the key with zero queries.
        freqs = rng.normal(200e6, 1e6, 64)
        scheme = SequentialPairing(200e3, storage_order="sorted")
        _, bits = scheme.enroll(freqs, rng)
        assert bits.all()

    def test_randomized_storage_balances_bits(self, rng):
        freqs = rng.normal(200e6, 1e6, 256)
        scheme = SequentialPairing(50e3, storage_order="randomized")
        _, bits = scheme.enroll(freqs, rng)
        assert 0.25 < bits.mean() < 0.75

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            SequentialPairing(0.0, storage_order="shuffled")

    def test_evaluate_matches_enrollment(self, rng):
        freqs = rng.normal(200e6, 1e6, 64)
        scheme = SequentialPairing(200e3)
        helper, bits = scheme.enroll(freqs, rng)
        np.testing.assert_array_equal(scheme.evaluate(freqs, helper),
                                      bits)


class TestHelperManipulation:
    @pytest.fixture
    def helper(self):
        return SequentialPairingHelper(((0, 1), (2, 3), (4, 5)))

    def test_swap_positions(self, helper):
        swapped = helper.with_swapped_positions(0, 2)
        assert swapped.pairs == ((4, 5), (2, 3), (0, 1))
        assert helper.pairs == ((0, 1), (2, 3), (4, 5))

    def test_flip_orientation(self, helper):
        flipped = helper.with_flipped_orientation(1)
        assert flipped.pairs == ((0, 1), (3, 2), (4, 5))

    def test_swap_changes_bits_iff_unequal(self, rng):
        freqs = rng.normal(200e6, 1e6, 64)
        scheme = SequentialPairing(200e3)
        helper, bits = scheme.enroll(freqs, rng)
        for j in range(1, helper.bits):
            swapped = helper.with_swapped_positions(0, j)
            new_bits = scheme.evaluate(freqs, swapped)
            errors = int(np.sum(new_bits != bits))
            assert errors == (0 if bits[0] == bits[j] else 2)

    def test_flip_injects_exactly_one_error(self, rng):
        freqs = rng.normal(200e6, 1e6, 64)
        scheme = SequentialPairing(200e3)
        helper, bits = scheme.enroll(freqs, rng)
        flipped = helper.with_flipped_orientation(3)
        new_bits = scheme.evaluate(freqs, flipped)
        assert int(np.sum(new_bits != bits)) == 1
        assert new_bits[3] != bits[3]


class TestDeviceSanityChecks:
    def test_reuse_rejected_when_enforced(self, rng):
        freqs = rng.normal(200e6, 1e6, 16)
        scheme = SequentialPairing(0.0, enforce_disjoint=True)
        helper = SequentialPairingHelper(((0, 1), (1, 2)))
        with pytest.raises(ValueError):
            scheme.evaluate(freqs, helper)

    def test_reuse_accepted_when_lax(self, rng):
        freqs = rng.normal(200e6, 1e6, 16)
        scheme = SequentialPairing(0.0, enforce_disjoint=False)
        helper = SequentialPairingHelper(((0, 1), (1, 2)))
        assert scheme.evaluate(freqs, helper).shape == (2,)
