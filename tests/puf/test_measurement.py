"""Tests for counters, enrollment averaging and the temperature sensor."""

import numpy as np
import pytest

from repro.puf import (
    CounterParams,
    FrequencyCounter,
    ROArray,
    TemperatureSensor,
    compare_counts,
    enroll_frequencies,
)


class TestCounter:
    def test_counts_are_quantised_frequencies(self):
        counter = FrequencyCounter(CounterParams(window=1e-3))
        counts = counter.counts(np.array([200e6, 200e6 + 999.0]))
        assert counts[0] == 200000
        assert counts[1] == 200000  # sub-quantum difference collapses

    def test_estimate_inverts_counts(self):
        counter = FrequencyCounter(CounterParams(window=1e-4))
        freqs = np.array([123456789.0])
        estimate = counter.estimate(counter.counts(freqs))
        assert abs(estimate[0] - freqs[0]) < 1.0 / 1e-4

    def test_negative_frequency_rejected(self):
        counter = FrequencyCounter()
        with pytest.raises(ValueError):
            counter.counts(np.array([-1.0]))

    def test_non_positive_window_rejected(self):
        with pytest.raises(ValueError):
            CounterParams(window=0.0)

    def test_measure_device(self, small_array):
        counter = FrequencyCounter()
        counts = counter.measure(small_array)
        assert counts.shape == (small_array.n,)
        assert counts.dtype == np.int64


class TestCompareCounts:
    def test_strict_orderings(self):
        assert compare_counts(10, 5) == 1
        assert compare_counts(5, 10) == 0

    def test_tie_uses_configured_value(self):
        assert compare_counts(7, 7) == 1
        assert compare_counts(7, 7, tie_value=0) == 0


class TestEnrollment:
    def test_averaging_reduces_noise(self, small_array):
        truth = small_array.true_frequencies()
        single = small_array.measure_frequencies()
        averaged = enroll_frequencies(small_array, samples=25)
        assert (np.abs(averaged - truth).mean()
                < np.abs(single - truth).mean())

    def test_quantised_enrollment_close_to_truth(self, small_array):
        counter = FrequencyCounter(CounterParams(window=1e-3))
        averaged = enroll_frequencies(small_array, samples=9,
                                      counter=counter)
        truth = small_array.true_frequencies()
        assert np.abs(averaged - truth).max() < 5e4

    def test_zero_samples_rejected(self, small_array):
        with pytest.raises(ValueError):
            enroll_frequencies(small_array, samples=0)

    def test_explicit_rng_reproducible(self, small_params):
        array = ROArray(small_params, rng=8)
        a = enroll_frequencies(array, samples=3,
                               rng=np.random.default_rng(5))
        b = enroll_frequencies(array, samples=3,
                               rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)


class TestTemperatureSensor:
    def test_bias_and_noise(self):
        sensor = TemperatureSensor(bias=1.5, sigma=0.0)
        assert sensor.read(25.0) == pytest.approx(26.5)

    def test_noise_magnitude(self):
        sensor = TemperatureSensor(bias=0.0, sigma=0.5)
        reads = np.array([sensor.read(25.0, rng=i) for i in range(300)])
        assert reads.std() == pytest.approx(0.5, rel=0.2)
        assert reads.mean() == pytest.approx(25.0, abs=0.1)
