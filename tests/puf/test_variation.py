"""Tests for the 2-D polynomial family and variation surfaces."""

import numpy as np
import pytest

from repro.puf.variation import (
    Polynomial2D,
    correlated_roughness,
    default_systematic_surface,
    design_matrix,
    n_terms,
    polynomial_terms,
    quadratic_ridge_x,
    tilted_plane,
)


class TestTermOrdering:
    def test_degree_zero_single_term(self):
        assert polynomial_terms(0) == [(0, 0)]

    def test_degree_two_matches_paper_expansion(self):
        # f(x, y) = sum_{i<=p} sum_{j<=i} beta_{ij} x^{i-j} y^j
        assert polynomial_terms(2) == [(0, 0), (1, 0), (1, 1),
                                       (2, 0), (2, 1), (2, 2)]

    def test_term_count_is_triangular(self):
        for degree in range(6):
            assert n_terms(degree) == (degree + 1) * (degree + 2) // 2
            assert len(polynomial_terms(degree)) == n_terms(degree)

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            polynomial_terms(-1)


class TestDesignMatrix:
    def test_shape(self):
        x = np.arange(12.0)
        y = np.arange(12.0)
        assert design_matrix(x, y, 3).shape == (12, n_terms(3))

    def test_columns_are_monomials(self):
        x = np.array([2.0])
        y = np.array([3.0])
        row = design_matrix(x, y, 2)[0]
        # terms: 1, x, y, x^2, xy, y^2
        assert row.tolist() == [1.0, 2.0, 3.0, 4.0, 6.0, 9.0]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            design_matrix(np.arange(3.0), np.arange(4.0), 1)


class TestPolynomial2D:
    def test_evaluation_matches_manual_expansion(self):
        poly = Polynomial2D(2, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        x, y = 1.5, -0.5
        expected = (1.0 + 2.0 * x + 3.0 * y + 4.0 * x * x
                    + 5.0 * x * y + 6.0 * y * y)
        assert poly(x, y) == pytest.approx(expected)

    def test_broadcast_shape_preserved(self):
        poly = tilted_plane(1.0, 2.0)
        xs, ys = np.meshgrid(np.arange(4.0), np.arange(3.0))
        assert poly(xs, ys).shape == (3, 4)

    def test_wrong_coefficient_count_rejected(self):
        with pytest.raises(ValueError):
            Polynomial2D(2, [1.0, 2.0])

    def test_coefficients_read_only(self):
        poly = Polynomial2D.zero(1)
        with pytest.raises(ValueError):
            poly.coefficients[0] = 1.0

    def test_fit_recovers_exact_polynomial(self, rng):
        truth = Polynomial2D(2, rng.normal(size=6))
        xs = rng.uniform(0, 10, 50)
        ys = rng.uniform(0, 10, 50)
        fitted = Polynomial2D.fit(xs, ys, truth(xs, ys), 2)
        np.testing.assert_allclose(fitted.coefficients,
                                   truth.coefficients, atol=1e-8)

    def test_fit_is_least_squares_on_noise(self, rng):
        xs = rng.uniform(0, 10, 200)
        ys = rng.uniform(0, 10, 200)
        values = 5.0 + rng.normal(size=200)
        fitted = Polynomial2D.fit(xs, ys, values, 0)
        assert fitted.coefficients[0] == pytest.approx(values.mean())

    def test_addition_aligns_mixed_degrees(self):
        low = tilted_plane(1.0, 0.0, offset=2.0)
        high = Polynomial2D(2, [0.0, 0.0, 0.0, 1.0, 0.0, 0.0])
        total = low + high
        assert total.degree == 2
        assert total(2.0, 0.0) == pytest.approx(2.0 + 2.0 + 4.0)

    def test_subtraction_and_negation(self):
        poly = Polynomial2D(1, [1.0, 2.0, 3.0])
        zero = poly - poly
        assert np.all(zero.coefficients == 0)
        assert (-poly)(1.0, 1.0) == pytest.approx(-poly(1.0, 1.0))

    def test_equality_semantics(self):
        a = Polynomial2D(1, [1.0, 2.0, 3.0])
        b = Polynomial2D(1, [1.0, 2.0, 3.0])
        c = Polynomial2D(1, [1.0, 2.0, 4.0])
        assert a == b
        assert a != c


class TestFactorySurfaces:
    def test_tilted_plane_gradients(self):
        plane = tilted_plane(10.0, -5.0, offset=1.0)
        assert plane(0.0, 0.0) == pytest.approx(1.0)
        assert plane(1.0, 0.0) - plane(0.0, 0.0) == pytest.approx(10.0)
        assert plane(0.0, 1.0) - plane(0.0, 0.0) == pytest.approx(-5.0)

    def test_quadratic_ridge_extremum_location(self):
        ridge = quadratic_ridge_x(2.0, x_extremum=3.5, offset=7.0)
        assert ridge(3.5, 0.0) == pytest.approx(7.0)
        # symmetric about the extremum, independent of y
        assert ridge(2.0, 1.0) == pytest.approx(ridge(5.0, 9.0))
        assert ridge(4.5, 0.0) > ridge(3.5, 0.0)

    def test_default_surface_amplitude_normalised(self):
        surface = default_systematic_surface(16, 32, amplitude=1e6,
                                             rng=5)
        xs, ys = np.meshgrid(np.arange(32.0), np.arange(16.0))
        values = surface(xs, ys)
        peak = np.max(np.abs(values - values.mean()))
        assert peak == pytest.approx(1e6, rel=1e-6)

    def test_default_surface_deterministic_per_seed(self):
        a = default_systematic_surface(4, 4, 1.0, rng=9)
        b = default_systematic_surface(4, 4, 1.0, rng=9)
        assert a == b

    def test_zero_amplitude_surface_is_zero(self):
        surface = default_systematic_surface(4, 4, 0.0, rng=1)
        xs, ys = np.meshgrid(np.arange(4.0), np.arange(4.0))
        np.testing.assert_allclose(surface(xs, ys), 0.0)


class TestCorrelatedRoughness:
    def test_shape_and_marginal_std(self):
        surface = correlated_roughness(16, 32, sigma=2.0, rng=3)
        assert surface.shape == (16, 32)
        assert surface.std() == pytest.approx(2.0, rel=1e-6)

    def test_zero_sigma_gives_zero_surface(self):
        surface = correlated_roughness(8, 8, sigma=0.0, rng=3)
        np.testing.assert_allclose(surface, 0.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            correlated_roughness(4, 4, sigma=-1.0)

    def test_smoothing_raises_neighbour_correlation(self, rng):
        rough = correlated_roughness(32, 32, 1.0,
                                     correlation_length=0.0, rng=1)
        smooth = correlated_roughness(32, 32, 1.0,
                                      correlation_length=3.0, rng=1)

        def neighbour_corr(surface):
            a = surface[:, :-1].ravel()
            b = surface[:, 1:].ravel()
            return np.corrcoef(a, b)[0, 1]

        assert neighbour_corr(smooth) > neighbour_corr(rough) + 0.3
