"""Property-based tests for the edge counter (seeded randomized loops).

Satellite of the scenario-engine PR: pin the counter's algebra —
count/estimate round-trip error bounds, floor-quantisation
monotonicity, and the §III-B ``Δf = 0`` tie-breaking contract of
:func:`compare_counts` — under broad randomized inputs rather than a
handful of hand-picked values.
"""

import numpy as np
import pytest

from repro.puf import CounterParams, FrequencyCounter, compare_counts

WINDOWS = (1e-5, 1e-4, 1e-3)


def _random_frequencies(rng, size):
    """Realistic RO frequencies: broad log-uniform band around 200 MHz."""
    return 10.0 ** rng.uniform(5.0, 9.0, size=size)


class TestRoundTripBounds:
    @pytest.mark.parametrize("window", WINDOWS)
    def test_estimate_error_below_one_quantum(self, window):
        counter = FrequencyCounter(CounterParams(window=window))
        rng = np.random.default_rng(101)
        for _ in range(50):
            freqs = _random_frequencies(rng, 64)
            estimate = counter.estimate(counter.counts(freqs))
            error = freqs - estimate
            # floor() never over-counts and loses < 1 edge
            assert np.all(error >= 0.0)
            assert np.all(error < 1.0 / window)

    @pytest.mark.parametrize("window", WINDOWS)
    def test_counts_are_near_fixed_point(self, window):
        """count → estimate → count moves at most one level down.

        Exact idempotence is a real-arithmetic property; in IEEE the
        round-trip ``floor((c / w) * w)`` may land an ulp below ``c``
        and floor one level lower, but never above and never further.
        """
        counter = FrequencyCounter(CounterParams(window=window))
        rng = np.random.default_rng(102)
        for _ in range(50):
            counts = counter.counts(_random_frequencies(rng, 64))
            again = counter.counts(counter.estimate(counts))
            delta = counts - again
            assert np.all((delta == 0) | (delta == 1))


class TestQuantisationMonotonicity:
    def test_floor_is_monotone(self):
        """f_a <= f_b implies counts(f_a) <= counts(f_b)."""
        counter = FrequencyCounter(CounterParams(window=1e-4))
        rng = np.random.default_rng(103)
        for _ in range(100):
            pair = np.sort(_random_frequencies(rng, 2))
            counts = counter.counts(pair)
            assert counts[0] <= counts[1]

    def test_sub_quantum_perturbation_never_skips_a_level(self):
        counter = FrequencyCounter(CounterParams(window=1e-4))
        rng = np.random.default_rng(104)
        quantum = 1.0 / 1e-4
        for _ in range(100):
            freq = _random_frequencies(rng, 1)
            bumped = freq + rng.uniform(0.0, quantum)
            delta = counter.counts(bumped) - counter.counts(freq)
            assert delta in (0, 1)


class TestCompareCountsTieBreaking:
    def test_randomized_strict_orderings_and_ties(self):
        """§III-B: ties yield *tie_value*; strict orders ignore it."""
        counter = FrequencyCounter(CounterParams(window=1e-4))
        rng = np.random.default_rng(105)
        ties = 0
        for _ in range(300):
            count_a, count_b = counter.counts(
                200e6 + rng.normal(scale=20e3, size=2))
            for tie_value in (0, 1):
                bit = compare_counts(count_a, count_b,
                                     tie_value=tie_value)
                if count_a > count_b:
                    assert bit == 1
                elif count_a < count_b:
                    assert bit == 0
                else:
                    assert bit == tie_value
            ties += int(count_a == count_b)
        # sigma 20e3 vs a 10 kHz quantum: discrete ties must actually
        # occur, or this test exercises nothing
        assert ties > 0

    def test_antisymmetry_away_from_ties(self):
        rng = np.random.default_rng(106)
        for _ in range(200):
            count_a, count_b = rng.integers(0, 30000, size=2)
            if count_a == count_b:
                continue
            assert (compare_counts(int(count_a), int(count_b))
                    + compare_counts(int(count_b), int(count_a))) == 1
