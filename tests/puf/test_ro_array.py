"""Tests for the RO array frequency model."""

import numpy as np
import pytest

from repro.puf import ROArray, ROArrayParams
from repro.puf.variation import Polynomial2D, tilted_plane


class TestParameters:
    def test_counts_and_shape(self):
        params = ROArrayParams(rows=4, cols=10)
        assert params.n == 40
        assert params.shape == (4, 10)

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError):
            ROArrayParams(rows=0, cols=10)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            ROArrayParams(sigma_process=-1.0)

    def test_non_positive_frequency_rejected(self):
        with pytest.raises(ValueError):
            ROArrayParams(f_nominal=0.0)


class TestGeometry:
    def test_row_major_index_mapping(self, small_array):
        assert small_array.index_to_xy(0) == (0, 0)
        assert small_array.index_to_xy(9) == (9, 0)
        assert small_array.index_to_xy(10) == (0, 1)
        assert small_array.xy_to_index(3, 2) == 23

    def test_mapping_roundtrip(self, small_array):
        for index in range(small_array.n):
            x, y = small_array.index_to_xy(index)
            assert small_array.xy_to_index(x, y) == index

    def test_out_of_range_indices_rejected(self, small_array):
        with pytest.raises(IndexError):
            small_array.index_to_xy(40)
        with pytest.raises(IndexError):
            small_array.xy_to_index(10, 0)


class TestStaticRandomness:
    def test_same_seed_same_device(self, small_params):
        a = ROArray(small_params, rng=1)
        b = ROArray(small_params, rng=1)
        np.testing.assert_array_equal(a.true_frequencies(),
                                      b.true_frequencies())

    def test_different_seeds_different_devices(self, small_params):
        a = ROArray(small_params, rng=1)
        b = ROArray(small_params, rng=2)
        assert not np.array_equal(a.true_frequencies(),
                                  b.true_frequencies())

    def test_measurements_do_not_perturb_manufacture(self, small_params):
        a = ROArray(small_params, rng=1)
        b = ROArray(small_params, rng=1)
        for _ in range(5):
            a.measure_frequencies()
        np.testing.assert_array_equal(a.true_frequencies(),
                                      b.true_frequencies())

    def test_process_variation_magnitude(self):
        params = ROArrayParams(rows=32, cols=32, sigma_process=1e6)
        array = ROArray(params, rng=0)
        std = array.process_variation.std()
        assert 0.8e6 < std < 1.2e6


class TestEnvironment:
    def test_frequency_decreases_with_temperature(self, small_array):
        cold = small_array.true_frequencies(temperature=0.0)
        hot = small_array.true_frequencies(temperature=80.0)
        assert np.all(hot < cold)

    def test_frequency_increases_with_voltage(self, small_array):
        low = small_array.true_frequencies(voltage=1.1)
        high = small_array.true_frequencies(voltage=1.3)
        assert np.all(high > low)

    def test_nominal_point_is_default(self, small_array):
        p = small_array.params
        np.testing.assert_array_equal(
            small_array.true_frequencies(),
            small_array.true_frequencies(p.temp_nominal, p.v_nominal))

    def test_temperature_model_is_linear(self, small_array):
        f0 = small_array.true_frequencies(temperature=20.0)
        f1 = small_array.true_frequencies(temperature=30.0)
        f2 = small_array.true_frequencies(temperature=40.0)
        np.testing.assert_allclose(f1 - f0, f2 - f1, rtol=1e-9)


class TestNoise:
    def test_measurement_noise_magnitude(self, small_params):
        array = ROArray(small_params, rng=4)
        truth = array.true_frequencies()
        reads = np.stack([array.measure_frequencies()
                          for _ in range(200)])
        residual_std = (reads - truth).std()
        assert residual_std == pytest.approx(small_params.sigma_noise,
                                             rel=0.15)

    def test_explicit_rng_reproducible(self, small_array):
        a = small_array.measure_frequencies(rng=99)
        b = small_array.measure_frequencies(rng=99)
        np.testing.assert_array_equal(a, b)


class TestSystematicSurface:
    def test_explicit_surface_is_applied(self, small_params):
        flat = ROArray(small_params, rng=6,
                       systematic=Polynomial2D.zero(1))
        tilted = ROArray(small_params, rng=6,
                         systematic=tilted_plane(1e5, 0.0))
        delta = tilted.true_frequencies() - flat.true_frequencies()
        np.testing.assert_allclose(delta, tilted.x * 1e5, atol=1e-3)

    def test_frequency_map_shape(self, small_array):
        assert small_array.frequency_map().shape == (4, 10)


class TestCrossover:
    def test_crossover_matches_pair_delta_zero(self, thermal_array):
        for i, j in [(0, 1), (10, 11), (40, 41)]:
            t_cross = thermal_array.crossover_temperature(i, j)
            if t_cross is None:
                continue
            assert thermal_array.pair_delta(
                i, j, temperature=t_cross) == pytest.approx(0.0, abs=1e-3)

    def test_equal_slopes_have_no_crossover(self, small_params):
        params = ROArrayParams(rows=2, cols=2, temp_slope_sigma=0.0)
        array = ROArray(params, rng=1)
        assert array.crossover_temperature(0, 1) is None

    def test_delta_changes_sign_across_crossover(self, thermal_array):
        found = False
        for i in range(0, thermal_array.n - 1, 2):
            t_cross = thermal_array.crossover_temperature(i, i + 1)
            if t_cross is None or not -20 < t_cross < 100:
                continue
            before = thermal_array.pair_delta(i, i + 1, t_cross - 5)
            after = thermal_array.pair_delta(i, i + 1, t_cross + 5)
            assert before * after < 0
            found = True
        assert found, "no in-range crossover pair in the fixture"
