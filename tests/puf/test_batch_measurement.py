"""Batched measurement draws must be stream-exact, not just i.i.d."""

import numpy as np
import pytest

from repro.puf import ROArray, ROArrayParams
from repro.puf.measurement import (
    FrequencyCounter,
    TemperatureSensor,
    enroll_frequencies,
)


@pytest.fixture
def params():
    return ROArrayParams(rows=4, cols=10)


class TestBatchDraws:
    def test_batch_equals_sequential_draws(self, params):
        sequential = ROArray(params, rng=9)
        batched = ROArray(params, rng=9)
        expected = np.stack([sequential.measure_frequencies()
                             for _ in range(7)])
        observed = batched.measure_frequencies_batch(7)
        np.testing.assert_array_equal(expected, observed)
        # Streams stay aligned afterwards.
        np.testing.assert_array_equal(
            sequential.measure_frequencies(),
            batched.measure_frequencies())

    def test_operating_point_forwarded(self, params):
        array = ROArray(params, rng=3)
        batch = array.measure_frequencies_batch(5, temperature=85.0,
                                                voltage=1.3)
        base = array.true_frequencies(85.0, 1.3)
        # Noise is zero-mean and small relative to the temperature
        # shift of the whole array.
        assert abs(batch.mean() - base.mean()) < 1e6

    def test_noise_rows_shape_and_validation(self, params):
        array = ROArray(params, rng=4)
        assert array.measurement_noise().shape == (array.n,)
        assert array.measurement_noise(6).shape == (6, array.n)
        with pytest.raises(ValueError):
            array.measure_frequencies_batch(0)

    def test_explicit_rng_stream(self, params):
        array = ROArray(params, rng=5)
        a = array.measurement_noise(4, rng=123)
        b = ROArray(params, rng=5).measurement_noise(4, rng=123)
        np.testing.assert_array_equal(a, b)


class TestEnrollmentBatch:
    def test_enrollment_unchanged_by_vectorization(self, params):
        # Enrollment now draws its samples as one batch; the averaged
        # result must match the historical per-sample loop bitwise.
        array = ROArray(params, rng=11)
        gen = np.random.default_rng(42)
        expected = np.zeros(array.n)
        for _ in range(9):
            expected += array.measure_frequencies(rng=gen)
        expected /= 9
        observed = enroll_frequencies(ROArray(params, rng=11), 9,
                                      rng=42)
        np.testing.assert_array_equal(expected, observed)

    def test_counter_batch_measure(self, params):
        array = ROArray(params, rng=12)
        twin = ROArray(params, rng=12)
        counter = FrequencyCounter()
        expected = np.stack([counter.measure(array)
                             for _ in range(5)])
        observed = counter.measure_batch(twin, 5)
        np.testing.assert_array_equal(expected, observed)


class TestSensorBatch:
    def test_read_batch_statistics(self):
        sensor = TemperatureSensor(bias=1.0, sigma=0.25)
        reads = sensor.read_batch(50.0, 4000, rng=7)
        assert reads.shape == (4000,)
        assert abs(reads.mean() - 51.0) < 0.05
        assert abs(reads.std() - 0.25) < 0.02

    def test_read_batch_validation(self):
        with pytest.raises(ValueError):
            TemperatureSensor().read_batch(25.0, 0)
