"""Regression: voltage scaling applies before the temperature slope.

The :class:`ROArray` docstring specifies

    f = (f_nominal + systematic + process) * (1 + c·(V − Vn))
        − slope · (T − Tn)

i.e. the multiplicative supply-voltage factor scales the *intrinsic*
frequency only — the temperature slope is subtracted afterwards and is
NOT voltage-scaled.  These tests pin that operand order observably, so
a refactor that silently swaps it (scaling the already-slope-shifted
frequency) fails loudly.
"""

import numpy as np

from repro.puf import ROArray, ROArrayParams

PARAMS = ROArrayParams(rows=4, cols=8, sigma_noise=0.0)


def _array():
    return ROArray(PARAMS, rng=np.random.default_rng(20260807))


class TestVoltageBeforeSlope:
    def test_voltage_shift_is_temperature_independent(self):
        """Δ_V(T) = base·(c·ΔV) must not depend on T."""
        array = _array()
        volt = 1.30
        shift_nominal = (array.true_frequencies(voltage=volt)
                         - array.true_frequencies())
        shift_hot = (array.true_frequencies(temperature=65.0,
                                            voltage=volt)
                     - array.true_frequencies(temperature=65.0))
        np.testing.assert_allclose(shift_hot, shift_nominal,
                                   rtol=1e-9)

    def test_combined_point_decomposes_additively(self):
        """f(T,V) = f(Tn,Vn)·scale + (f(T,Vn) − f(Tn,Vn))."""
        array = _array()
        temp, volt = 60.0, 1.32
        scale = 1.0 + PARAMS.voltage_coeff * (volt - PARAMS.v_nominal)
        base = array.true_frequencies()
        expected = base * scale + (array.true_frequencies(temp)
                                   - base)
        np.testing.assert_allclose(
            array.true_frequencies(temp, volt), expected, rtol=1e-12)

    def test_discriminates_against_swapped_order(self):
        """The wrong order (scale after slope) is measurably different."""
        array = _array()
        temp, volt = 60.0, 1.32
        scale = 1.0 + PARAMS.voltage_coeff * (volt - PARAMS.v_nominal)
        wrong = array.true_frequencies(temp) * scale
        actual = array.true_frequencies(temp, volt)
        # slope·ΔT·(scale−1) ≈ 40e3·35·0.0096 ≈ 13 kHz per RO
        assert np.all(np.abs(actual - wrong) > 1e3)

    def test_batch_path_matches_scalar_ordering(self):
        """true_frequencies_batch uses the identical operand order."""
        array = _array()
        temps = np.array([25.0, 60.0, -10.0])
        volts = np.array([1.20, 1.32, 1.10])
        batch = array.true_frequencies_batch(temps, volts)
        for i in range(3):
            np.testing.assert_array_equal(
                batch[i],
                array.true_frequencies(float(temps[i]),
                                       float(volts[i])))
