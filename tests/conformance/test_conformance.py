"""The seeded conformance corpus, checked end to end.

Acceptance gates of the scenario-engine PR:

* every cell of the committed corpus re-runs into its pass-band;
* a deliberately perturbed configuration is detected out-of-band;
* two same-seed corpus runs produce bitwise-identical identities;
* conformance runs condense into warehouse records and a summary
  entry the longitudinal trajectory can render.
"""

import json
from pathlib import Path

import pytest

from repro.scenario.conformance import (
    CaseCheck,
    ConformanceReport,
    CorpusFormatError,
    band_violations,
    check_entry,
    load_corpus,
    run_conformance,
    summary_entry,
    warehouse_records,
)
from repro.scenario.corpus import (
    CORPUS_SCHEMA_VERSION,
    build_corpus,
    perturbed_variant,
    quick_corpus,
    run_case,
)
from repro.warehouse.store import WarehouseStore
from repro.warehouse.trajectory import build_report

CORPUS_DIR = Path(__file__).parent / "corpus"


@pytest.fixture(scope="module")
def corpus():
    return load_corpus(CORPUS_DIR)


class TestCommittedCorpus:
    def test_loads_with_expected_shape(self, corpus):
        seed, entries = corpus
        assert seed == 0
        identifiers = {entry.case.case_id for entry in entries}
        assert len(identifiers) == len(entries) == 74
        quick = [entry for entry in entries if entry.case.quick]
        assert len(quick) == 12
        kinds = {entry.case.kind for entry in entries}
        assert kinds == {"failure", "attack"}

    def test_every_entry_carries_bands_and_baseline(self, corpus):
        _, entries = corpus
        for entry in entries:
            assert entry.bands, entry.case.case_id
            assert "fingerprint" in entry.baseline
            for low, high in entry.bands.values():
                assert low <= high

    def test_quick_slice_in_band(self, corpus):
        seed, entries = corpus
        report = run_conformance(CORPUS_DIR, quick=True)
        assert len(report.checks) == 12
        assert report.ok, "\n".join(report.lines())

    def test_full_corpus_in_band(self):
        report = run_conformance(CORPUS_DIR)
        assert len(report.checks) == 74
        assert report.ok, "\n".join(report.lines())
        payload = report.to_payload()
        assert payload["ok"] is True
        json.dumps(payload)  # must be serialisable as-is


class TestTamperDetection:
    @pytest.mark.parametrize("case_id", [
        "failure/sequential/constant/base",
        "failure/distiller/constant/base",
        "attack/sequential/constant/base",
    ])
    def test_perturbed_config_lands_out_of_band(self, corpus,
                                                case_id):
        seed, entries = corpus
        entry = next(e for e in entries
                     if e.case.case_id == case_id)
        tampered = perturbed_variant(entry.case)
        result = run_case(tampered, seed)
        assert band_violations(entry, result.observed)

    def test_unperturbed_rerun_stays_in_band(self, corpus):
        seed, entries = corpus
        entry = next(e for e in entries if e.case.quick)
        result = run_case(entry.case, seed)
        assert not band_violations(entry, result.observed)


class TestReproducibility:
    def test_same_seed_runs_bitwise_identical(self, corpus):
        seed, entries = corpus
        for entry in entries:
            if not entry.case.quick:
                continue
            check = check_entry(entry, seed,
                                check_reproducible=True)
            assert check.reproducible, entry.case.case_id
            assert check.ok, entry.case.case_id

    def test_identity_excludes_timing(self, corpus):
        seed, entries = corpus
        entry = next(e for e in entries if e.case.quick)
        first = run_case(entry.case, seed)
        second = run_case(entry.case, seed)
        assert first.fingerprint == second.fingerprint
        assert first.identity == second.identity

    def test_drifted_fingerprint_flags_check(self, corpus):
        seed, entries = corpus
        entry = next(e for e in entries if e.case.quick)
        result = run_case(entry.case, seed)
        drifted = CaseCheck(entry, result, (),
                            replay_fingerprint="deadbeef")
        assert not drifted.reproducible
        assert not drifted.ok


class TestCorpusGeneration:
    def test_generation_matches_committed_files(self, corpus):
        """Regenerating the quick slice reproduces committed bands."""
        seed, entries = corpus
        committed = {entry.case.case_id: entry for entry in entries}
        payloads = build_corpus(quick_corpus(), seed)
        for payload in payloads.values():
            assert payload["schema_version"] == CORPUS_SCHEMA_VERSION
            for item in payload["cases"]:
                case_id = (f"{item['case']['kind']}/"
                           f"{item['case']['scheme']}/"
                           f"{item['case']['family']}/"
                           f"{item['case']['perturbation']}")
                entry = committed[case_id]
                assert (item["expected"]["baseline"]["fingerprint"]
                        == entry.baseline["fingerprint"]), case_id
                for name, (low, high) in \
                        item["expected"]["bands"].items():
                    assert entry.bands[name] == [low, high]


class TestCorpusFormat:
    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(CorpusFormatError):
            load_corpus(tmp_path / "nope")

    def test_invalid_json_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(CorpusFormatError):
            load_corpus(tmp_path)

    def test_schema_version_mismatch_rejected(self, tmp_path):
        (tmp_path / "old.json").write_text(json.dumps(
            {"schema_version": 0, "seed": 0, "cases": []}))
        with pytest.raises(CorpusFormatError):
            load_corpus(tmp_path)

    def test_seed_disagreement_rejected(self, tmp_path):
        for name, seed in (("a.json", 0), ("b.json", 1)):
            (tmp_path / name).write_text(json.dumps(
                {"schema_version": CORPUS_SCHEMA_VERSION,
                 "seed": seed, "cases": []}))
        with pytest.raises(CorpusFormatError):
            load_corpus(tmp_path)

    def test_malformed_case_rejected(self, tmp_path):
        (tmp_path / "a.json").write_text(json.dumps(
            {"schema_version": CORPUS_SCHEMA_VERSION, "seed": 0,
             "cases": [{"case": {"scheme": "sequential"}}]}))
        with pytest.raises(CorpusFormatError):
            load_corpus(tmp_path)


class TestWarehouseWiring:
    @pytest.fixture(scope="class")
    def quick_report(self):
        return run_conformance(CORPUS_DIR, quick=True)

    def test_records_shape_and_keying(self, quick_report):
        records = warehouse_records(quick_report, "abc123",
                                    quick=True)
        assert len(records) == len(quick_report.checks)
        hashes = {record["config_hash"] for record in records}
        assert len(hashes) == 1
        for record in records:
            assert record["cell"].startswith("scenario/")
            assert record["status"] == "ok"
            assert 0.0 <= record["security"]["recovery_rate"] <= 1.0
            assert record["security"]["outcome_fingerprint"]

    def test_records_append_to_store(self, quick_report, tmp_path):
        records = warehouse_records(quick_report, "abc123",
                                    quick=True)
        store = WarehouseStore(tmp_path / "store.jsonl")
        assert store.append(records) == len(records)
        assert store.verify_reproducible() == []

    def test_summary_entry_renders_in_trajectory(self, quick_report,
                                                 tmp_path):
        records = warehouse_records(quick_report, "abc123",
                                    quick=True)
        entry = summary_entry(records, "abc123", quick=True)
        assert set(entry["benchmarks"]) == set(entry["security"])
        summary = tmp_path / "BENCH_scenarios.json"
        summary.write_text(json.dumps(
            {"name": "scenarios",
             "history": [dict(entry, sequence=1)]}))
        report = build_report([summary])
        assert any("scenario/" in line for line in report.lines)

    def test_failure_report_lines_and_exitworthiness(self,
                                                     quick_report):
        check = quick_report.checks[0]
        broken = CaseCheck(check.entry, check.result,
                           ("failure_rate_mean=1 outside [0, 0.05]",))
        report = ConformanceReport(quick_report.seed, [broken])
        assert not report.ok
        assert report.failures == [broken]
        assert any("out-of-band" in line for line in report.lines())
