"""Tests for the append-only warehouse store and its hashing."""

import json

import numpy as np
import pytest

from repro.warehouse import (
    SCHEMA_VERSION,
    StoreFormatError,
    WarehouseStore,
    canonical_json,
    config_hash,
    fingerprint_bits,
    record_identity,
    record_key,
)


def make_record(commit="c1", cell="a/b/baseline", cfg="deadbeef",
                status="ok", attack_seconds=0.5):
    return {
        "schema_version": SCHEMA_VERSION,
        "commit": commit,
        "config_hash": cfg,
        "cell": cell,
        "scheme": "a",
        "attack": "b",
        "countermeasure": "baseline",
        "variant": "",
        "config": {"seed": 0, "devices": 2, "rows": 4, "cols": 10,
                   "profile": "quick"},
        "status": status,
        "reason": "",
        "engine": "lockstep-fused",
        "security": {"recovered": 2, "recovery_rate": 1.0},
        "perf": {"attack_seconds": attack_seconds},
        "meta": {"created": "2026-01-01T00:00:00+00:00"},
    }


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == \
            canonical_json({"a": 2, "b": 1})

    def test_compact(self):
        assert " " not in canonical_json({"a": [1, 2]})


class TestConfigHash:
    def test_stable_and_short(self):
        cfg = {"seed": 0, "cells": ["x", "y"]}
        assert config_hash(cfg) == config_hash(dict(cfg))
        assert len(config_hash(cfg)) == 16

    def test_sensitive_to_content(self):
        assert config_hash({"seed": 0}) != config_hash({"seed": 1})


class TestFingerprintBits:
    def test_deterministic(self):
        arrays = [np.array([1, 0, 1], dtype=np.uint8)]
        assert fingerprint_bits(arrays) == fingerprint_bits(arrays)

    def test_length_prefix_disambiguates(self):
        # [1,0] + [1] vs [1] + [0,1]: same concatenation, different
        # segmentation must fingerprint differently.
        a = [np.array([1, 0], dtype=np.uint8),
             np.array([1], dtype=np.uint8)]
        b = [np.array([1], dtype=np.uint8),
             np.array([0, 1], dtype=np.uint8)]
        assert fingerprint_bits(a) != fingerprint_bits(b)


class TestRecordKeyIdentity:
    def test_key_fields(self):
        record = make_record()
        assert record_key(record) == ("c1", "deadbeef",
                                      SCHEMA_VERSION, "a/b/baseline")

    def test_identity_excludes_perf_and_meta(self):
        fast = make_record(attack_seconds=0.1)
        slow = make_record(attack_seconds=9.9)
        slow["meta"]["created"] = "2030-12-31T23:59:59+00:00"
        assert record_identity(fast) == record_identity(slow)

    def test_identity_keeps_security(self):
        base = make_record()
        moved = make_record()
        moved["security"] = {"recovered": 0, "recovery_rate": 0.0}
        assert record_identity(base) != record_identity(moved)


class TestWarehouseStore:
    def test_append_and_read_back(self, tmp_path):
        store = WarehouseStore(tmp_path / "results.jsonl")
        records = [make_record(cell="a/b/baseline"),
                   make_record(cell="a/b/hardened")]
        assert store.append(records) == 2
        read = store.records()
        assert [r["cell"] for r in read] == ["a/b/baseline",
                                             "a/b/hardened"]

    def test_append_only(self, tmp_path):
        store = WarehouseStore(tmp_path / "results.jsonl")
        store.append([make_record(commit="c1")])
        store.append([make_record(commit="c2")])
        assert store.commits() == ["c1", "c2"]
        assert len(list(store.records())) == 2

    def test_lines_are_canonical_json(self, tmp_path):
        store = WarehouseStore(tmp_path / "results.jsonl")
        store.append([make_record()])
        line = store.path.read_text().strip()
        assert line == canonical_json(json.loads(line))

    def test_matrix_latest_record_wins(self, tmp_path):
        store = WarehouseStore(tmp_path / "results.jsonl")
        first = make_record(status="error")
        second = make_record(status="ok")
        store.append([first])
        store.append([second])
        matrix = store.matrix("c1")
        assert matrix["a/b/baseline"]["status"] == "ok"

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text("not json\n")
        with pytest.raises(StoreFormatError):
            list(WarehouseStore(path).records())

    def test_rejects_incomplete_record(self, tmp_path):
        store = WarehouseStore(tmp_path / "results.jsonl")
        with pytest.raises(StoreFormatError):
            store.append([{"commit": "c1"}])

    def test_verify_reproducible_flags_identity_drift(self, tmp_path):
        store = WarehouseStore(tmp_path / "results.jsonl")
        store.append([make_record()])
        drifted = make_record()
        drifted["security"] = {"recovered": 0, "recovery_rate": 0.0}
        store.append([drifted])
        assert store.verify_reproducible()

    def test_verify_reproducible_ok_on_timing_noise(self, tmp_path):
        store = WarehouseStore(tmp_path / "results.jsonl")
        store.append([make_record(attack_seconds=0.1)])
        store.append([make_record(attack_seconds=0.9)])
        assert store.verify_reproducible() == []
