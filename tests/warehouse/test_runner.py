"""End-to-end tests for the matrix runner, summaries and diffs.

Runnable-cell tests stick to the cheapest cells (the masking
distiller, the 4×10 group construction) so the suite stays fast while
still exercising the fleet-scale path, the reproducibility contract
and the record schema.
"""

import pytest

from repro.warehouse import (
    SCHEMA_VERSION,
    build_entry,
    canonical_json,
    config_hash,
    diff_matrices,
    full_matrix,
    matrix_config,
    record_identity,
    run_cell,
    run_matrix,
    select_cells,
)

DISTILLER = "distiller[masking]/distiller/baseline"


def cell_by_id(cell_id):
    matches = select_cells(full_matrix(), cell_id)
    assert len(matches) == 1
    return matches[0]


@pytest.fixture(scope="module")
def distiller_records():
    """Two same-seed runs of the cheapest runnable cell."""
    cells = [cell_by_id(DISTILLER)]
    first = run_matrix(cells, "quick", seed=0, devices=2,
                       commit="testcommit")
    second = run_matrix(cells, "quick", seed=0, devices=2,
                        commit="testcommit")
    return first[0], second[0]


class TestRecordSchema:
    def test_ok_record_shape(self, distiller_records):
        record, _ = distiller_records
        assert record["status"] == "ok"
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["cell"] == DISTILLER
        assert record["engine"] == "lockstep-fused"
        security = record["security"]
        assert security["devices"] == 2
        assert security["recovered"] == 2
        assert security["recovery_rate"] == 1.0
        assert len(security["recovered_mask"]) == 2
        assert len(security["outcome_fingerprint"]) == 64
        assert len(security["enrollment_fingerprint"]) == 64
        assert record["perf"]["attack_seconds"] > 0

    def test_na_record_carries_reason(self):
        cell = cell_by_id("fuzzy-extractor/sequential/baseline")
        record = run_cell(cell, devices=2, seed=0, commit="c",
                          cfg_hash="h", profile="quick")
        assert record["status"] == "n/a"
        assert "fuzzy-extractor" in record["reason"]
        assert record["security"] is None

    def test_record_is_json_serialisable(self, distiller_records):
        record, _ = distiller_records
        canonical_json(record)  # raises on non-JSON types


class TestReproducibility:
    def test_same_seed_identical_identity(self, distiller_records):
        first, second = distiller_records
        assert canonical_json(record_identity(first)) == \
            canonical_json(record_identity(second))

    def test_different_seed_moves_the_outcome(self):
        cell = cell_by_id(DISTILLER)
        base = run_cell(cell, 2, 0, "c", "h", "quick")
        moved = run_cell(cell, 2, 1, "c", "h", "quick")
        assert base["security"]["outcome_fingerprint"] != \
            moved["security"]["outcome_fingerprint"]

    def test_config_hash_covers_cells_and_seed(self):
        cells = [cell_by_id(DISTILLER)]
        base = config_hash(matrix_config(cells, "quick", 0, 2))
        assert base == config_hash(matrix_config(cells, "quick", 0, 2))
        assert base != config_hash(matrix_config(cells, "quick", 1, 2))
        assert base != config_hash(matrix_config(cells, "quick", 0, 4))


class TestHardenedCell:
    def test_group_hardening_defeats_the_attack(self):
        cell = cell_by_id("group-based/group/hardened")
        record = run_cell(cell, 2, 0, "c", "h", "quick")
        assert record["status"] == "ok"
        assert record["security"]["recovered"] == 0

    def test_group_baseline_recovers(self):
        cell = cell_by_id("group-based/group/baseline")
        record = run_cell(cell, 2, 0, "c", "h", "quick")
        assert record["status"] == "ok"
        assert record["security"]["recovery_rate"] == 1.0


class TestReconstructionCells:
    RECON = "fuzzy-extractor[4x10]/reconstruction/baseline"

    def test_record_shape(self):
        cell = cell_by_id(self.RECON)
        record = run_cell(cell, 2, 0, "c", "h", "quick")
        assert record["status"] == "ok"
        assert record["engine"] == "reconstruction-sweep"
        security = record["security"]
        assert security["devices"] == 2
        assert security["queries_mean"] == 64
        assert len(security["outcome_fingerprint"]) == 64
        assert record["perf"]["attack_seconds"] > 0
        assert record["perf"]["kernel_calls"] > 0

    def test_same_seed_identical_identity(self):
        cell = cell_by_id(self.RECON)
        first = run_cell(cell, 2, 0, "c", "h", "quick")
        second = run_cell(cell, 2, 0, "c", "h", "quick")
        assert canonical_json(record_identity(first)) == \
            canonical_json(record_identity(second))


class TestRegistryReuse:
    def test_registry_runs_match_fresh_enrollment(self, tmp_path):
        """create-then-reuse registry runs keep record identity."""
        cell = cell_by_id(DISTILLER)
        fresh = run_cell(cell, 2, 0, "c", "h", "quick")
        created = run_cell(cell, 2, 0, "c", "h", "quick",
                           registry_dir=str(tmp_path))
        cell_dir = tmp_path / DISTILLER.replace("/", "__")
        assert (cell_dir / "manifest.json").exists()
        reused = run_cell(cell, 2, 0, "c", "h", "quick",
                          registry_dir=str(tmp_path))
        want = canonical_json(record_identity(fresh))
        assert canonical_json(record_identity(created)) == want
        assert canonical_json(record_identity(reused)) == want

    def test_registry_rejects_population_drift(self, tmp_path):
        cell = cell_by_id(DISTILLER)
        run_cell(cell, 2, 0, "c", "h", "quick",
                 registry_dir=str(tmp_path))
        drifted = run_cell(cell, 2, 1, "c", "h", "quick",
                           registry_dir=str(tmp_path))
        assert drifted["status"] == "error"
        assert "was enrolled for" in drifted["reason"]


class TestSummaryAndDiff:
    def test_build_entry_mirrors_ok_cells(self, distiller_records):
        record, _ = distiller_records
        entry = build_entry([record], "testcommit", "quick")
        assert DISTILLER in entry["benchmarks"]
        assert entry["benchmarks"][DISTILLER]["mean"] == \
            record["perf"]["attack_seconds"]
        assert entry["security"][DISTILLER]["recovery_rate"] == 1.0

    def test_diff_identical_matrices(self, distiller_records):
        record, replay = distiller_records
        result = diff_matrices({DISTILLER: record},
                               {DISTILLER: replay},
                               timing_threshold=10.0)
        assert result.security_changes == 0
        assert not result.changed

    def test_diff_flags_security_movement(self, distiller_records):
        record, _ = distiller_records
        import copy

        moved = copy.deepcopy(record)
        moved["security"]["recovery_rate"] = 0.0
        moved["security"]["outcome_fingerprint"] = "0" * 64
        result = diff_matrices({DISTILLER: record},
                               {DISTILLER: moved})
        assert result.changed
        assert result.security_changes == 1

    def test_diff_reports_coverage_changes(self, distiller_records):
        record, _ = distiller_records
        result = diff_matrices({}, {DISTILLER: record})
        assert any("ADDED" in line for line in result.lines)
