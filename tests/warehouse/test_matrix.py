"""Tests for the attack × scheme × countermeasure matrix registry."""

from repro.warehouse import (
    ATTACKS,
    COUNTERMEASURES,
    SCHEMES,
    full_matrix,
    quick_matrix,
    select_cells,
)


class TestFullMatrix:
    def test_covers_the_whole_cross_product(self):
        cells = full_matrix()
        coordinates = {(c.scheme, c.attack, c.countermeasure)
                       for c in cells}
        assert coordinates == {(s, a, cm) for s in SCHEMES
                               for a in ATTACKS
                               for cm in COUNTERMEASURES}

    def test_every_cell_is_classified(self):
        for cell in full_matrix():
            if cell.runnable:
                assert cell.rows > 0 and cell.cols > 0
                assert cell.reason == ""
            else:
                assert cell.reason

    def test_cell_ids_unique(self):
        ids = [cell.cell_id for cell in full_matrix()]
        assert len(ids) == len(set(ids))

    def test_variant_in_cell_id(self):
        ids = {cell.cell_id for cell in full_matrix()}
        assert "distiller[masking]/distiller/baseline" in ids
        assert "sequential[rm5]/ml/baseline" in ids

    def test_runnable_count(self):
        runnable = [c for c in full_matrix() if c.runnable]
        assert len(runnable) == 12

    def test_reconstruction_cells(self):
        recon = [c for c in full_matrix()
                 if c.attack == "reconstruction"]
        runnable = [c for c in recon if c.runnable]
        assert {c.cell_id for c in runnable} == {
            "fuzzy-extractor[4x10]/reconstruction/baseline",
            "fuzzy-extractor[8x16]/reconstruction/baseline"}
        # timing baselines ride the full profile, never CI smoke
        assert all(not c.quick for c in runnable)
        assert all(c.reason for c in recon if not c.runnable)


class TestQuickMatrix:
    def test_subset_of_full(self):
        full_ids = {c.cell_id for c in full_matrix()}
        assert {c.cell_id for c in quick_matrix()} <= full_ids

    def test_keeps_all_inapplicable_cells(self):
        full_na = [c for c in full_matrix() if not c.runnable]
        quick_na = [c for c in quick_matrix() if not c.runnable]
        assert len(quick_na) == len(full_na)

    def test_only_quick_runnables(self):
        for cell in quick_matrix():
            if cell.runnable:
                assert cell.quick


class TestSeedMaterial:
    def test_position_independent(self):
        # Seed material derives from the cell id, never the index.
        cells = full_matrix()
        by_id = {c.cell_id: c.seed_material(7) for c in cells}
        for cell in reversed(cells):
            assert by_id[cell.cell_id] == cell.seed_material(7)

    def test_distinct_across_cells_and_seeds(self):
        cells = full_matrix()
        materials = {tuple(c.seed_material(0)) for c in cells}
        assert len(materials) == len(cells)
        assert cells[0].seed_material(0) != cells[0].seed_material(1)


class TestSelectCells:
    def test_pattern_filters(self):
        chosen = select_cells(full_matrix(), "group-based/*")
        assert chosen
        assert all(c.scheme == "group-based" for c in chosen)

    def test_none_selects_all(self):
        assert len(select_cells(full_matrix())) == len(full_matrix())
