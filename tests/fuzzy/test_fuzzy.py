"""Tests for Toeplitz hashing and the fuzzy extractor (paper §VII-A)."""

import numpy as np
import pytest

from repro.ecc import CodeOffsetSketch, DecodingFailure, design_bch
from repro.fuzzy import FuzzyExtractor, ToeplitzHash


class TestToeplitzHash:
    def test_seed_length_enforced(self):
        with pytest.raises(ValueError):
            ToeplitzHash(np.zeros(10, dtype=np.uint8), 8, 4)

    def test_matrix_is_toeplitz(self):
        hasher = ToeplitzHash.random(12, 6, rng=1)
        matrix = hasher.matrix
        for i in range(1, 6):
            np.testing.assert_array_equal(matrix[i, 1:], matrix[i - 1,
                                                                :-1])

    def test_linearity_over_gf2(self, rng):
        hasher = ToeplitzHash.random(16, 8, rng=2)
        a = rng.integers(0, 2, 16).astype(np.uint8)
        b = rng.integers(0, 2, 16).astype(np.uint8)
        np.testing.assert_array_equal(hasher(a) ^ hasher(b),
                                      hasher(a ^ b))

    def test_output_length(self, rng):
        hasher = ToeplitzHash.random(20, 7, rng=3)
        word = rng.integers(0, 2, 20).astype(np.uint8)
        assert hasher(word).shape == (7,)

    def test_universality_collision_rate(self, rng):
        # Pr[h(a) = h(b)] over the family is about 2^-out for a != b.
        out_bits = 4
        a = rng.integers(0, 2, 12).astype(np.uint8)
        b = a.copy()
        b[0] ^= 1
        collisions = 0
        trials = 800
        for seed in range(trials):
            hasher = ToeplitzHash.random(12, out_bits, rng=seed)
            collisions += int(np.array_equal(hasher(a), hasher(b)))
        assert collisions / trials == pytest.approx(2 ** -out_bits,
                                                    abs=0.03)

    def test_seed_reproducibility(self, rng):
        seed_bits = rng.integers(0, 2, 19).astype(np.uint8)
        word = rng.integers(0, 2, 12).astype(np.uint8)
        a = ToeplitzHash(seed_bits, 12, 8)
        b = ToeplitzHash(seed_bits, 12, 8)
        np.testing.assert_array_equal(a(word), b(word))


class TestFuzzyExtractor:
    @pytest.fixture
    def extractor(self):
        code = design_bch(48, 4)
        return FuzzyExtractor(CodeOffsetSketch(code, 48), out_bits=32)

    @pytest.fixture
    def response(self, rng):
        return rng.integers(0, 2, 48).astype(np.uint8)

    def test_reproduce_within_radius(self, extractor, response, rng):
        key, helper = extractor.generate(response, rng)
        assert key.shape == (32,)
        for errors in range(5):
            noisy = response.copy()
            noisy[rng.choice(48, errors, replace=False)] ^= 1
            np.testing.assert_array_equal(
                extractor.reproduce(noisy, helper), key)

    def test_failure_beyond_radius(self, extractor, response, rng):
        key, helper = extractor.generate(response, rng)
        wrong = 0
        for _ in range(20):
            noisy = response.copy()
            noisy[rng.choice(48, 8, replace=False)] ^= 1
            try:
                other = extractor.reproduce(noisy, helper)
                wrong += int(not np.array_equal(other, key))
            except DecodingFailure:
                wrong += 1
        assert wrong > 0

    def test_keys_differ_across_devices(self, extractor, rng):
        keys = []
        for _ in range(10):
            response = rng.integers(0, 2, 48).astype(np.uint8)
            key, _ = extractor.generate(response, rng)
            keys.append(key)
        distinct = {tuple(k) for k in keys}
        assert len(distinct) == 10

    def test_out_bits_bounded_by_response(self):
        code = design_bch(16, 2)
        with pytest.raises(ValueError):
            FuzzyExtractor(CodeOffsetSketch(code, 16), out_bits=17)

    def test_helper_manipulation_shifts_key_uniformly(self, extractor,
                                                      response, rng):
        # Flipping one bit of the code-offset payload either keeps the
        # recovered response identical (absorbed by ECC) or moves it to
        # a *different* response entirely; it never exposes a single
        # targeted key bit the way the §VI constructions do.
        key, helper = extractor.generate(response, rng)
        payload = helper.sketch.payload.copy()
        payload[0] ^= 1
        manipulated = helper.with_sketch(
            helper.sketch.with_payload(payload))
        outcome = extractor.reproduce(response, manipulated)
        assert np.array_equal(outcome, key) or \
            np.sum(outcome != key) > 1
