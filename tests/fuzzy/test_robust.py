"""Tests for the robust fuzzy extractor (manipulation detection)."""

import numpy as np
import pytest

from repro.ecc import CodeOffsetSketch, DecodingFailure, design_bch
from repro.fuzzy import ManipulationDetected, RobustFuzzyExtractor
from repro.fuzzy.robust import _authentication_tag


@pytest.fixture
def extractor():
    code = design_bch(48, 4)
    return RobustFuzzyExtractor(CodeOffsetSketch(code, 48), out_bits=32)


@pytest.fixture
def response(rng):
    return rng.integers(0, 2, 48).astype(np.uint8)


class TestHonestOperation:
    def test_reproduce_within_radius(self, extractor, response, rng):
        key, helper = extractor.generate(response, rng)
        for errors in range(5):
            noisy = response.copy()
            noisy[rng.choice(48, errors, replace=False)] ^= 1
            np.testing.assert_array_equal(
                extractor.reproduce(noisy, helper), key)

    def test_tag_is_deterministic_in_inputs(self, response, rng):
        payload = rng.integers(0, 2, 64).astype(np.uint8)
        seed = rng.integers(0, 2, 79).astype(np.uint8)
        assert _authentication_tag(response, payload, seed, 32) == \
            _authentication_tag(response, payload, seed, 32)
        other = response.copy()
        other[0] ^= 1
        assert _authentication_tag(other, payload, seed, 32) != \
            _authentication_tag(response, payload, seed, 32)


class TestManipulationDetection:
    def test_every_single_payload_flip_detected(self, extractor,
                                                response, rng):
        _, helper = extractor.generate(response, rng)
        for position in range(0, helper.sketch.payload.size, 7):
            payload = helper.sketch.payload.copy()
            payload[position] ^= 1
            manipulated = helper.with_sketch(
                helper.sketch.with_payload(payload))
            with pytest.raises((ManipulationDetected, DecodingFailure)):
                extractor.reproduce(response, manipulated)

    def test_hash_seed_manipulation_detected(self, extractor, response,
                                             rng):
        _, helper = extractor.generate(response, rng)
        seed = helper.hash_seed.copy()
        seed[3] ^= 1
        manipulated = type(helper)(helper.sketch, seed,
                                   helper.out_bits, helper.tag)
        with pytest.raises(ManipulationDetected):
            extractor.reproduce(response, manipulated)

    def test_forged_tag_without_response_fails(self, extractor,
                                               response, rng):
        # Reprogramming attempt: the attacker builds a full bundle for a
        # guessed response.  Unless the guess equals the real response,
        # the sketch recovers something else and the tag mismatches.
        _, honest = extractor.generate(response, rng)
        guess = rng.integers(0, 2, 48).astype(np.uint8)
        sketch = extractor.sketch.generate(guess, rng)
        forged_tag = _authentication_tag(guess, sketch.payload,
                                         honest.hash_seed, 32)
        forged = type(honest)(sketch, honest.hash_seed, 32, forged_tag)
        with pytest.raises((ManipulationDetected, DecodingFailure)):
            extractor.reproduce(response, forged)

    def test_correct_guess_would_verify(self, extractor, response, rng):
        # Sanity bound: with the *true* response the forgery verifies —
        # the security rests entirely on the response's secrecy.
        _, honest = extractor.generate(response, rng)
        sketch = extractor.sketch.generate(response, rng)
        tag = _authentication_tag(response, sketch.payload,
                                  honest.hash_seed, 32)
        forged = type(honest)(sketch, honest.hash_seed, 32, tag)
        key = extractor.reproduce(response, forged)
        assert key.shape == (32,)

    def test_parameter_validation(self):
        code = design_bch(16, 2)
        with pytest.raises(ValueError):
            RobustFuzzyExtractor(CodeOffsetSketch(code, 16),
                                 out_bits=17)


class TestReproduceBatch:
    def test_matches_scalar_reproduce(self, extractor, response, rng):
        key, helper = extractor.generate(response, rng)
        batch = np.tile(response, (40, 1))
        for i in range(40):
            flips = rng.choice(48, size=int(rng.integers(0, 7)),
                               replace=False)
            batch[i, flips] ^= 1
        keys, ok = extractor.reproduce_batch(batch, helper)
        for i in range(40):
            try:
                expected = extractor.reproduce(batch[i], helper)
            except (ManipulationDetected, DecodingFailure):
                assert not ok[i]
                assert not keys[i].any()
            else:
                assert ok[i]
                np.testing.assert_array_equal(expected, keys[i])

    def test_manipulated_helper_fails_every_row(self, extractor,
                                                response, rng):
        _, helper = extractor.generate(response, rng)
        payload = helper.sketch.payload.copy()
        payload[0] ^= 1
        manipulated = helper.with_sketch(
            helper.sketch.with_payload(payload))
        batch = np.tile(response, (10, 1))
        keys, ok = extractor.reproduce_batch(batch, manipulated)
        assert not ok.any()
        assert not keys.any()
