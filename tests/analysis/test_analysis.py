"""Tests for the entropy / reliability / statistics toolbox."""

import numpy as np
import pytest

from repro.analysis import (
    SummaryStats,
    bit_bias,
    bit_correlation_matrix,
    ecc_failure_probability,
    expected_queries_per_relation,
    extraction_summary,
    failure_rate_gap,
    flip_probability,
    fractional_hamming_distance,
    gaussian_cdf,
    histogram,
    hoeffding_bound,
    inter_device_distances,
    intra_device_distances,
    leaked_parity_count,
    min_entropy_per_bit,
    pairwise_comparisons,
    permutation_entropy,
    poisson_binomial_pmf,
    shannon_entropy_per_bit,
    wilson_interval,
)


class TestEntropy:
    def test_permutation_entropy_values(self):
        assert permutation_entropy(1) == pytest.approx(0.0)
        assert permutation_entropy(4) == pytest.approx(np.log2(24))
        # Paper §II: N! orderings, not N(N-1)/2 independent bits.
        assert permutation_entropy(64) < pairwise_comparisons(64)

    def test_pairwise_comparison_count(self):
        assert pairwise_comparisons(8) == 28

    def test_bias_of_uniform_population(self, rng):
        samples = rng.integers(0, 2, (400, 16))
        bias = bit_bias(samples)
        assert np.all(np.abs(bias - 0.5) < 0.1)

    def test_bias_detects_constant_position(self, rng):
        samples = rng.integers(0, 2, (100, 4))
        samples[:, 2] = 1
        assert bit_bias(samples)[2] == pytest.approx(1.0)

    def test_entropy_measures_ordering(self, rng):
        samples = rng.integers(0, 2, (500, 3))
        samples[:, 0] = (rng.random(500) < 0.9).astype(int)
        shannon = shannon_entropy_per_bit(samples)
        minent = min_entropy_per_bit(samples)
        assert shannon[0] < shannon[1]
        assert np.all(minent <= shannon + 1e-9)

    def test_correlation_matrix_identifies_copies(self, rng):
        base = rng.integers(0, 2, (300, 1))
        noise = rng.integers(0, 2, (300, 1))
        samples = np.hstack([base, base, noise])
        corr = bit_correlation_matrix(samples)
        assert corr[0, 1] == pytest.approx(1.0)
        assert abs(corr[0, 2]) < 0.2

    def test_distances(self, rng):
        population = rng.integers(0, 2, (20, 64))
        inter = inter_device_distances(population)
        assert inter.shape == (190,)
        assert inter.mean() == pytest.approx(0.5, abs=0.05)
        reads = np.tile(population[0], (5, 1))
        intra = intra_device_distances(population[0], reads)
        assert np.all(intra == 0.0)

    def test_hamming_distance_validation(self):
        with pytest.raises(ValueError):
            fractional_hamming_distance(np.zeros(3), np.zeros(4))

    def test_extraction_summary(self):
        summary = extraction_summary(40, {"sequential": 20,
                                          "group": 66})
        assert summary["sequential"]["fraction"] < \
            summary["group"]["fraction"]
        assert summary["group"]["budget_bits"] == \
            pytest.approx(permutation_entropy(40))

    def test_leaked_parities(self):
        assert leaked_parity_count(17) == 17
        with pytest.raises(ValueError):
            leaked_parity_count(-1)


class TestReliability:
    def test_flip_probability_monotone_in_margin(self):
        sigma = 25e3
        probs = [flip_probability(d, sigma)
                 for d in (0.0, 10e3, 50e3, 200e3)]
        assert probs[0] == pytest.approx(0.5)
        assert all(a > b for a, b in zip(probs, probs[1:]))

    def test_flip_probability_zero_noise(self):
        assert flip_probability(1.0, 0.0) == 0.0
        assert flip_probability(0.0, 0.0) == 0.5

    def test_gaussian_cdf_symmetry(self):
        assert gaussian_cdf(0.0) == pytest.approx(0.5)
        assert gaussian_cdf(1.0) + gaussian_cdf(-1.0) == \
            pytest.approx(1.0)

    def test_poisson_binomial_matches_binomial(self):
        from math import comb

        p = 0.3
        pmf = poisson_binomial_pmf([p] * 10)
        for k in range(11):
            expected = comb(10, k) * p ** k * (1 - p) ** (10 - k)
            assert pmf[k] == pytest.approx(expected)

    def test_poisson_binomial_heterogeneous(self):
        pmf = poisson_binomial_pmf([0.0, 1.0, 0.5])
        # exactly one guaranteed error plus a fair coin
        assert pmf[0] == pytest.approx(0.0)
        assert pmf[1] == pytest.approx(0.5)
        assert pmf[2] == pytest.approx(0.5)

    def test_pmf_normalised(self, rng):
        probs = rng.random(25)
        assert poisson_binomial_pmf(probs).sum() == pytest.approx(1.0)

    def test_ecc_failure_probability(self):
        probs = [0.5] * 4
        # P[#errors > 1] for Bin(4, 0.5): 1 - (1 + 4)/16
        assert ecc_failure_probability(probs, 1) == \
            pytest.approx(1 - 5 / 16)

    def test_failure_rate_gap_grows_with_injection(self):
        probs = [0.01] * 60
        t = 5
        gaps = [failure_rate_gap(probs, t, injected)
                for injected in range(t)]
        assert all(b >= a - 1e-12 for a, b in zip(gaps, gaps[1:]))
        # t-1 injected + 2 extra errors exceed t: the wrong hypothesis
        # fails almost surely while the correct one rarely does.
        assert gaps[-1] > 0.8


class TestStats:
    def test_hoeffding_monotone_in_samples(self):
        assert hoeffding_bound(100, 0.99) < hoeffding_bound(10, 0.99)

    def test_wilson_interval_contains_point_estimate(self):
        low, high = wilson_interval(3, 20)
        assert low < 3 / 20 < high
        assert 0.0 <= low and high <= 1.0

    def test_wilson_extremes(self):
        low, _ = wilson_interval(0, 50)
        assert low == 0.0
        _, high = wilson_interval(50, 50)
        assert high == 1.0

    def test_expected_queries_decrease_with_gap(self):
        few = expected_queries_per_relation(0.0, 1.0)
        many = expected_queries_per_relation(0.4, 0.6)
        assert few < many

    def test_summary_stats(self):
        stats = SummaryStats.from_samples([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.count == 3
        row = stats.as_row()
        assert row["min"] == 1.0 and row["max"] == 3.0

    def test_summary_stats_empty(self):
        stats = SummaryStats.from_samples([])
        assert stats.count == 0
        assert np.isnan(stats.mean)

    def test_histogram_density(self, rng):
        densities, edges = histogram(rng.normal(size=1000), bins=10)
        widths = np.diff(edges)
        assert np.sum(densities * widths) == pytest.approx(1.0)
