"""Tests for trivial, repetition, Hamming and blockwise codes."""

import numpy as np
import pytest

from repro.ecc import (
    BlockwiseCode,
    HammingCode,
    RepetitionCode,
    TrivialCode,
)


class TestTrivialCode:
    def test_identity_roundtrip(self, rng):
        code = TrivialCode(16)
        message = rng.integers(0, 2, 16).astype(np.uint8)
        np.testing.assert_array_equal(code.encode(message), message)
        np.testing.assert_array_equal(code.decode(message), message)
        np.testing.assert_array_equal(code.extract(message), message)

    def test_degenerate_parameters(self):
        code = TrivialCode(5)
        assert (code.n, code.k, code.t) == (5, 5, 0)

    def test_never_detects_errors(self, rng):
        # The t = 0 degenerate case of paper §VI: failures surface only
        # at the application key check.
        code = TrivialCode(8)
        garbled = rng.integers(0, 2, 8).astype(np.uint8)
        np.testing.assert_array_equal(code.decode(garbled), garbled)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            TrivialCode(0)


class TestRepetitionCode:
    def test_parameters(self):
        code = RepetitionCode(5)
        assert (code.n, code.k, code.t) == (5, 1, 2)

    def test_even_or_short_length_rejected(self):
        with pytest.raises(ValueError):
            RepetitionCode(4)
        with pytest.raises(ValueError):
            RepetitionCode(1)

    @pytest.mark.parametrize("bit", [0, 1])
    def test_majority_corrects_up_to_t(self, bit):
        code = RepetitionCode(7)
        codeword = code.encode(np.array([bit], dtype=np.uint8))
        received = codeword.copy()
        received[:code.t] ^= 1
        decoded = code.decode(received)
        assert code.extract(decoded)[0] == bit

    def test_beyond_t_miscorrects_silently(self):
        code = RepetitionCode(3)
        codeword = code.encode(np.array([1], dtype=np.uint8))
        received = codeword.copy()
        received[:2] ^= 1
        assert code.extract(code.decode(received))[0] == 0


class TestHammingCode:
    def test_parameters(self):
        code = HammingCode(3)
        assert (code.n, code.k, code.t) == (7, 4, 1)

    def test_single_error_correction_everywhere(self, rng):
        code = HammingCode(3)
        message = rng.integers(0, 2, code.k).astype(np.uint8)
        codeword = code.encode(message)
        for position in range(code.n):
            received = codeword.copy()
            received[position] ^= 1
            np.testing.assert_array_equal(code.decode(received), codeword)

    def test_extract_roundtrip(self, rng):
        code = HammingCode(4)
        message = rng.integers(0, 2, code.k).astype(np.uint8)
        np.testing.assert_array_equal(
            code.extract(code.encode(message)), message)

    def test_double_error_miscorrects_to_codeword(self, rng):
        code = HammingCode(3)
        codeword = code.encode(rng.integers(0, 2, 4).astype(np.uint8))
        received = codeword.copy()
        received[[0, 3]] ^= 1
        decoded = code.decode(received)
        # Perfect code: always lands on a codeword, never the right one.
        assert code.is_codeword(decoded)
        assert not np.array_equal(decoded, codeword)

    def test_small_r_rejected(self):
        with pytest.raises(ValueError):
            HammingCode(1)


class TestBlockwiseCode:
    def test_parameters_scale_with_blocks(self):
        code = BlockwiseCode(HammingCode(3), 4)
        assert (code.n, code.k, code.t) == (28, 16, 1)

    def test_roundtrip_with_per_block_errors(self, rng):
        code = BlockwiseCode(HammingCode(3), 3)
        message = rng.integers(0, 2, code.k).astype(np.uint8)
        received = code.encode(message)
        # One error in every block: all independently corrected.
        for block in range(3):
            received[block * 7 + (block + 1)] ^= 1
        np.testing.assert_array_equal(
            code.extract(code.decode(received)), message)

    def test_repetition_blocks(self, rng):
        code = BlockwiseCode(RepetitionCode(5), 8)
        message = rng.integers(0, 2, 8).astype(np.uint8)
        received = code.encode(message)
        received[::5] ^= 1  # one error per block
        np.testing.assert_array_equal(
            code.extract(code.decode(received)), message)

    def test_invalid_block_count_rejected(self):
        with pytest.raises(ValueError):
            BlockwiseCode(RepetitionCode(3), 0)
