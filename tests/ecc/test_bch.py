"""Tests for BCH encoding and Berlekamp–Massey/Chien decoding."""

import numpy as np
import pytest

from repro.ecc import BCHCode, DecodingFailure, design_bch


class TestParameters:
    def test_known_code_dimensions(self):
        # Classic BCH parameter table entries.
        assert (BCHCode(4, 1).n, BCHCode(4, 1).k) == (15, 11)
        assert (BCHCode(4, 2).n, BCHCode(4, 2).k) == (15, 7)
        assert (BCHCode(4, 3).n, BCHCode(4, 3).k) == (15, 5)
        assert (BCHCode(5, 2).n, BCHCode(5, 2).k) == (31, 21)
        assert (BCHCode(6, 3).n, BCHCode(6, 3).k) == (63, 45)

    def test_generator_degree_matches_redundancy(self):
        for m, t in [(4, 2), (5, 3), (6, 4)]:
            code = BCHCode(m, t)
            assert len(code.generator_polynomial) - 1 == code.n - code.k

    def test_t_zero_rejected(self):
        with pytest.raises(ValueError):
            BCHCode(4, 0)

    def test_oversized_t_rejected(self):
        with pytest.raises(ValueError):
            BCHCode(4, 8)

    def test_shortening_bounds(self):
        base = BCHCode(5, 2)
        with pytest.raises(ValueError):
            BCHCode(5, 2, shorten=base.k)
        short = BCHCode(5, 2, shorten=5)
        assert (short.n, short.k) == (base.n - 5, base.k - 5)


class TestEncoding:
    def test_systematic_layout(self, rng):
        code = BCHCode(5, 2)
        message = rng.integers(0, 2, code.k).astype(np.uint8)
        codeword = code.encode(message)
        np.testing.assert_array_equal(codeword[code.n - code.k:], message)
        np.testing.assert_array_equal(code.extract(codeword), message)

    def test_codewords_have_zero_syndromes(self, rng):
        code = BCHCode(5, 2)
        for _ in range(10):
            message = rng.integers(0, 2, code.k).astype(np.uint8)
            assert code.is_codeword(code.encode(message))

    def test_linearity(self, rng):
        code = BCHCode(4, 2)
        a = rng.integers(0, 2, code.k).astype(np.uint8)
        b = rng.integers(0, 2, code.k).astype(np.uint8)
        np.testing.assert_array_equal(
            code.encode(a) ^ code.encode(b), code.encode(a ^ b))

    def test_all_ones_is_a_codeword(self):
        # Narrow-sense BCH is complement-closed: the generator has no
        # root at alpha^0, so (x^n - 1)/(x - 1) is divisible by g(x).
        # This is the structural fact behind the §VI-A two-candidate
        # subtlety documented in the attack module.
        code = BCHCode(5, 2)
        assert code.is_codeword(np.ones(code.n, dtype=np.uint8))

    def test_wrong_message_length_rejected(self):
        code = BCHCode(4, 1)
        with pytest.raises(ValueError):
            code.encode(np.zeros(code.k + 1, dtype=np.uint8))


class TestDecoding:
    @pytest.mark.parametrize("m,t", [(4, 1), (4, 3), (5, 2), (6, 3),
                                     (7, 4)])
    def test_corrects_up_to_t_errors(self, m, t, rng):
        code = BCHCode(m, t)
        for errors in range(t + 1):
            message = rng.integers(0, 2, code.k).astype(np.uint8)
            codeword = code.encode(message)
            received = codeword.copy()
            positions = rng.choice(code.n, errors, replace=False)
            received[positions] ^= 1
            corrected = code.decode(received)
            np.testing.assert_array_equal(corrected, codeword)

    def test_beyond_t_fails_or_miscorrects_to_codeword(self, rng):
        code = BCHCode(6, 3)
        outcomes = {"failure": 0, "miscorrection": 0}
        for _ in range(40):
            codeword = code.encode(
                rng.integers(0, 2, code.k).astype(np.uint8))
            received = codeword.copy()
            positions = rng.choice(code.n, code.t + 2, replace=False)
            received[positions] ^= 1
            try:
                decoded = code.decode(received)
            except DecodingFailure:
                outcomes["failure"] += 1
            else:
                assert code.is_codeword(decoded)
                assert not np.array_equal(decoded, codeword)
                outcomes["miscorrection"] += 1
        assert outcomes["failure"] > 0

    def test_error_free_word_returned_unchanged(self, rng):
        code = BCHCode(5, 3)
        codeword = code.encode(rng.integers(0, 2, code.k).astype(np.uint8))
        np.testing.assert_array_equal(code.decode(codeword), codeword)

    def test_shortened_code_roundtrip(self, rng):
        code = BCHCode(6, 3, shorten=20)
        for errors in range(code.t + 1):
            message = rng.integers(0, 2, code.k).astype(np.uint8)
            codeword = code.encode(message)
            received = codeword.copy()
            positions = rng.choice(code.n, errors, replace=False)
            received[positions] ^= 1
            np.testing.assert_array_equal(code.decode(received), codeword)

    def test_wrong_word_length_rejected(self):
        code = BCHCode(4, 1)
        with pytest.raises(ValueError):
            code.decode(np.zeros(code.n + 1, dtype=np.uint8))


class TestDesignBCH:
    def test_exact_message_length(self):
        code = design_bch(40, 3)
        assert code.k == 40
        assert code.t == 3

    def test_small_requests(self):
        code = design_bch(1, 1)
        assert code.k == 1
        assert code.t == 1

    def test_roundtrip_on_designed_code(self, rng):
        code = design_bch(57, 2)
        message = rng.integers(0, 2, 57).astype(np.uint8)
        received = code.encode(message)
        received[[3, 40]] ^= 1
        np.testing.assert_array_equal(
            code.extract(code.decode(received)), message)

    def test_impossible_request_rejected(self):
        with pytest.raises(ValueError):
            design_bch(10_000, 3, max_m=6)

    def test_invalid_data_bits_rejected(self):
        with pytest.raises(ValueError):
            design_bch(0, 1)
