"""Tests for code-offset and syndrome secure sketches."""

import numpy as np
import pytest

from repro.ecc import (
    CodeOffsetSketch,
    DecodingFailure,
    SketchData,
    SyndromeSketch,
    TrivialCode,
    design_bch,
)


@pytest.fixture
def code():
    return design_bch(40, 3)


@pytest.fixture
def response(rng):
    return rng.integers(0, 2, 40).astype(np.uint8)


class TestSketchData:
    def test_payload_normalised_and_copied(self):
        payload = np.array([0, 1, 1], dtype=np.int64)
        data = SketchData(payload)
        payload[0] = 1
        assert data.payload[0] == 0
        assert data.payload.dtype == np.uint8

    def test_non_binary_payload_rejected(self):
        with pytest.raises(ValueError):
            SketchData(np.array([0, 2]))

    def test_with_payload_replaces(self):
        data = SketchData(np.zeros(4, dtype=np.uint8))
        new = data.with_payload(np.ones(4, dtype=np.uint8))
        assert new.payload.sum() == 4
        assert data.payload.sum() == 0


class TestCodeOffsetSketch:
    def test_exact_recovery_within_radius(self, code, response, rng):
        sketch = CodeOffsetSketch(code, 40)
        helper = sketch.generate(response, rng)
        for errors in range(code.t + 1):
            noisy = response.copy()
            noisy[rng.choice(40, errors, replace=False)] ^= 1
            np.testing.assert_array_equal(
                sketch.recover(noisy, helper), response)

    def test_failure_beyond_radius(self, code, response, rng):
        sketch = CodeOffsetSketch(code, 40)
        helper = sketch.generate(response, rng)
        failures = 0
        for _ in range(20):
            noisy = response.copy()
            noisy[rng.choice(40, code.t + 3, replace=False)] ^= 1
            try:
                recovered = sketch.recover(noisy, helper)
                assert not np.array_equal(recovered, response)
            except DecodingFailure:
                failures += 1
        assert failures > 0

    def test_helper_randomised_per_enrollment(self, code, response):
        sketch = CodeOffsetSketch(code, 40)
        a = sketch.generate(response, rng=1)
        b = sketch.generate(response, rng=2)
        assert not np.array_equal(a.payload, b.payload)

    def test_helper_for_response_reprograms(self, code, rng):
        # The §VI-C reprogramming primitive: helper data consistent with
        # an arbitrary attacker-chosen response.
        sketch = CodeOffsetSketch(code, 40)
        target = rng.integers(0, 2, 40).astype(np.uint8)
        seed = np.zeros(code.k, dtype=np.uint8)
        helper = sketch.helper_for_response(target, seed)
        np.testing.assert_array_equal(
            sketch.recover(target, helper), target)

    def test_response_length_validation(self, code):
        with pytest.raises(ValueError):
            CodeOffsetSketch(code, code.n + 1)
        with pytest.raises(ValueError):
            CodeOffsetSketch(code, 0)

    def test_trivial_code_sketch_is_noise_transparent(self, rng):
        # t = 0: the sketch cannot absorb any error.
        sketch = CodeOffsetSketch(TrivialCode(16), 16)
        response = rng.integers(0, 2, 16).astype(np.uint8)
        helper = sketch.generate(response, rng)
        noisy = response.copy()
        noisy[3] ^= 1
        recovered = sketch.recover(noisy, helper)
        assert not np.array_equal(recovered, response)


class TestSyndromeSketch:
    def test_exact_recovery_within_radius(self, code, response, rng):
        sketch = SyndromeSketch(code, 40)
        helper = sketch.generate(response)
        for errors in range(code.t + 1):
            noisy = response.copy()
            noisy[rng.choice(40, errors, replace=False)] ^= 1
            np.testing.assert_array_equal(
                sketch.recover(noisy, helper), response)

    def test_deterministic_helper(self, code, response):
        sketch = SyndromeSketch(code, 40)
        a = sketch.generate(response)
        b = sketch.generate(response)
        np.testing.assert_array_equal(a.payload, b.payload)

    def test_helper_smaller_than_code_offset(self, code):
        syndrome = SyndromeSketch(code, 40)
        offset = CodeOffsetSketch(code, 40)
        assert syndrome.helper_length < offset.helper_length

    def test_failure_beyond_radius(self, code, response, rng):
        sketch = SyndromeSketch(code, 40)
        helper = sketch.generate(response)
        failures = 0
        for _ in range(20):
            noisy = response.copy()
            noisy[rng.choice(40, code.t + 3, replace=False)] ^= 1
            try:
                recovered = sketch.recover(noisy, helper)
                assert not np.array_equal(recovered, response)
            except DecodingFailure:
                failures += 1
        assert failures > 0

    def test_requires_bch(self):
        with pytest.raises(TypeError):
            SyndromeSketch(TrivialCode(8), 8)

    def test_zero_syndrome_passthrough(self, code, response):
        sketch = SyndromeSketch(code, 40)
        helper = sketch.generate(response)
        np.testing.assert_array_equal(
            sketch.recover(response, helper), response)
