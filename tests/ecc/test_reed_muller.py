"""Tests for first-order Reed–Muller codes."""

import numpy as np
import pytest

from repro.ecc import (
    BlockwiseCode,
    CodeOffsetSketch,
    ReedMullerCode,
)


class TestParameters:
    @pytest.mark.parametrize("m,n,k,t", [(2, 4, 3, 0), (3, 8, 4, 1),
                                         (4, 16, 5, 3), (5, 32, 6, 7),
                                         (6, 64, 7, 15)])
    def test_code_dimensions(self, m, n, k, t):
        code = ReedMullerCode(m)
        assert (code.n, code.k, code.t) == (n, k, t)

    def test_invalid_m_rejected(self):
        with pytest.raises(ValueError):
            ReedMullerCode(1)
        with pytest.raises(ValueError):
            ReedMullerCode(17)


class TestEncoding:
    def test_linearity(self, rng):
        code = ReedMullerCode(4)
        a = rng.integers(0, 2, code.k).astype(np.uint8)
        b = rng.integers(0, 2, code.k).astype(np.uint8)
        np.testing.assert_array_equal(code.encode(a) ^ code.encode(b),
                                      code.encode(a ^ b))

    def test_minimum_distance(self):
        # Non-zero codewords of RM(1, m) have weight 2^{m-1} or 2^m.
        code = ReedMullerCode(4)
        for value in range(1, 1 << code.k):
            message = np.array([(value >> i) & 1
                                for i in range(code.k)],
                               dtype=np.uint8)
            weight = int(code.encode(message).sum())
            assert weight in (8, 16)

    def test_all_ones_is_codeword(self):
        code = ReedMullerCode(4)
        ones = np.ones(code.n, dtype=np.uint8)
        np.testing.assert_array_equal(code.decode(ones), ones)


class TestDecoding:
    @pytest.mark.parametrize("m", [3, 4, 5, 6])
    def test_corrects_up_to_t(self, m, rng):
        code = ReedMullerCode(m)
        for errors in range(code.t + 1):
            message = rng.integers(0, 2, code.k).astype(np.uint8)
            codeword = code.encode(message)
            received = codeword.copy()
            received[rng.choice(code.n, errors, replace=False)] ^= 1
            np.testing.assert_array_equal(code.decode(received),
                                          codeword)
            np.testing.assert_array_equal(
                code.extract(code.decode(received)), message)

    def test_beyond_radius_miscorrects_to_codeword(self, rng):
        code = ReedMullerCode(4)
        codeword = code.encode(rng.integers(0, 2, 5).astype(np.uint8))
        received = codeword.copy()
        received[rng.choice(16, 7, replace=False)] ^= 1
        decoded = code.decode(received)
        # ML decoding: the output is always a codeword.
        np.testing.assert_array_equal(code.decode(decoded), decoded)


class TestComposition:
    def test_code_offset_sketch_over_rm(self, rng):
        code = ReedMullerCode(5)
        sketch = CodeOffsetSketch(code, 32)
        response = rng.integers(0, 2, 32).astype(np.uint8)
        helper = sketch.generate(response, rng)
        noisy = response.copy()
        noisy[rng.choice(32, 7, replace=False)] ^= 1
        np.testing.assert_array_equal(sketch.recover(noisy, helper),
                                      response)

    def test_blockwise_rm(self, rng):
        code = BlockwiseCode(ReedMullerCode(4), 3)
        message = rng.integers(0, 2, code.k).astype(np.uint8)
        received = code.encode(message)
        for block in range(3):
            received[block * 16 + block] ^= 1
        np.testing.assert_array_equal(
            code.extract(code.decode(received)), message)
