"""Fused kernel execution: keys, stacking/splitting, sketch two-phase.

The contracts under test (``docs/evaluators.md``):

* ``kernel_key`` — structurally identical codes/sketches agree,
  different geometries differ (fusing across equal keys must be safe).
* ``run_kernels`` — fused outputs are bitwise-identical to running
  each workload's own kernel alone, for any mix of keys.
* sketch ``plan_recover``/``finish_recover`` — the two-phase split is
  bitwise-identical to the one-shot ``recover_batch`` reference.
"""

import numpy as np
import pytest

from repro.ecc import (
    BCHCode,
    BlockwiseCode,
    CodeOffsetSketch,
    HammingCode,
    RepetitionCode,
    ReedMullerCode,
    SyndromeSketch,
    TrivialCode,
    design_bch,
    kernel_stats,
    run_kernels,
)
from repro.ecc.kernel import KernelWorkload, split_outputs


def noisy_batch(rng, reference, count, max_flips):
    """Rows of *reference* with up to *max_flips* random bit flips."""
    rows = np.tile(reference, (count, 1))
    for i in range(count):
        flips = rng.integers(0, max_flips + 1)
        positions = rng.choice(reference.size, size=flips,
                               replace=False)
        rows[i, positions] ^= 1
    return rows


class TestKernelKeys:
    def test_equal_geometry_equal_key(self):
        assert design_bch(64, 3).kernel_key() \
            == design_bch(64, 3).kernel_key()
        assert BCHCode(7, 3).kernel_key() == BCHCode(7, 3).kernel_key()

    def test_different_geometry_different_key(self):
        keys = {design_bch(64, 3).kernel_key(),
                design_bch(60, 3).kernel_key(),
                design_bch(64, 2).kernel_key(),
                RepetitionCode(5).kernel_key(),
                RepetitionCode(7).kernel_key(),
                TrivialCode(8).kernel_key(),
                HammingCode(3).kernel_key(),
                ReedMullerCode(4).kernel_key(),
                BlockwiseCode(RepetitionCode(5), 3).kernel_key()}
        assert len(keys) == 9

    def test_external_code_has_no_key(self):
        class External(TrivialCode):
            def kernel_key(self):
                return super(TrivialCode, self).kernel_key()

        assert External(4).kernel_key() is None
        assert BlockwiseCode(External(4), 2).kernel_key() is None

    def test_sketches_propagate_code_opt_out(self):
        # A code that opts out of fusion (kernel_key None) must opt
        # its sketches out too — never a shared (..., None, ...) key.
        class OptOut(BCHCode):
            def kernel_key(self):
                return None

        code = OptOut(5, 2)
        assert CodeOffsetSketch(code, 20).kernel_key() is None
        assert SyndromeSketch(code, 20).kernel_key() is None

    def test_sketch_keys_follow_code_and_bounds(self):
        code = design_bch(64, 3)
        same = design_bch(64, 3)
        assert CodeOffsetSketch(code, 40).kernel_key() \
            == CodeOffsetSketch(same, 64).kernel_key()
        assert SyndromeSketch(code, 40).kernel_key() \
            == SyndromeSketch(same, 40).kernel_key()
        # The syndrome kernel bounds corrections to the response
        # length, so the length is part of the identity.
        assert SyndromeSketch(code, 40).kernel_key() \
            != SyndromeSketch(same, 41).kernel_key()


class TestRunKernels:
    def test_fused_equals_solo(self):
        rng = np.random.default_rng(7)
        code_a = design_bch(64, 3)
        code_b = design_bch(64, 3)
        other = design_bch(30, 2)
        workloads = []
        for code, count in ((code_a, 5), (code_b, 9), (other, 4)):
            words = (rng.integers(0, 2, size=(count, code.n))
                     .astype(np.uint8))
            workloads.append(KernelWorkload(
                ("decode",) + code.kernel_key(), words,
                code.decode_batch))
        fused = run_kernels(workloads)
        solo = [run_kernels([w])[0] for w in workloads]
        for got, want in zip(fused, solo):
            for got_part, want_part in zip(got, want):
                np.testing.assert_array_equal(got_part, want_part)

    def test_fusion_reduces_calls(self):
        rng = np.random.default_rng(8)
        code = design_bch(64, 3)
        twin = design_bch(64, 3)
        workloads = [
            KernelWorkload(code.kernel_key(),
                           rng.integers(0, 2, size=(3, code.n))
                           .astype(np.uint8), code.decode_batch),
            KernelWorkload(twin.kernel_key(),
                           rng.integers(0, 2, size=(4, twin.n))
                           .astype(np.uint8), twin.decode_batch)]
        kernel_stats.reset()
        outputs = run_kernels(workloads)
        assert kernel_stats.calls == 1
        assert kernel_stats.rows == 7
        assert outputs[0][0].shape[0] == 3
        assert outputs[1][0].shape[0] == 4

    def test_none_and_empty_workloads_skipped(self):
        code = design_bch(16, 2)
        empty = KernelWorkload(code.kernel_key(),
                               np.zeros((0, code.n), dtype=np.uint8),
                               code.decode_batch)
        outputs = run_kernels([None, empty])
        assert outputs == [None, None]

    def test_keyless_workloads_run_alone(self):
        rng = np.random.default_rng(9)
        code = design_bch(16, 2)
        words = rng.integers(0, 2, size=(2, code.n)).astype(np.uint8)
        kernel_stats.reset()
        outputs = run_kernels([
            KernelWorkload(None, words, code.decode_batch),
            KernelWorkload(None, words, code.decode_batch)])
        assert kernel_stats.calls == 2
        for part_a, part_b in zip(outputs[0], outputs[1]):
            np.testing.assert_array_equal(part_a, part_b)

    def test_split_outputs_round_trip(self):
        matrix = np.arange(24).reshape(6, 4)
        mask = np.arange(6) % 2 == 0
        pieces = split_outputs((matrix, mask), [1, 2, 3])
        assert [p[0].shape[0] for p in pieces] == [1, 2, 3]
        np.testing.assert_array_equal(np.concatenate(
            [p[0] for p in pieces]), matrix)
        np.testing.assert_array_equal(np.concatenate(
            [p[1] for p in pieces]), mask)


class TestSketchTwoPhase:
    @pytest.mark.parametrize("sketch_cls", [CodeOffsetSketch,
                                            SyndromeSketch])
    def test_plan_finish_matches_recover_batch(self, sketch_cls):
        rng = np.random.default_rng(21)
        code = design_bch(40, 3)
        sketch = sketch_cls(code, 40)
        response = rng.integers(0, 2, size=40).astype(np.uint8)
        helper = sketch.generate(response, rng)
        noisy = noisy_batch(rng, response, 40, code.t + 2)
        expected = sketch.recover_batch(noisy, helper)
        workload, state = sketch.plan_recover(noisy, helper)
        (outputs,) = run_kernels([workload])
        observed = sketch.finish_recover(state, outputs)
        np.testing.assert_array_equal(expected[0], observed[0])
        np.testing.assert_array_equal(expected[1], observed[1])

    def test_cross_device_fusion_matches_per_device(self):
        # Two devices sharing a code geometry: stacking both recovery
        # workloads into one kernel call must not change either
        # device's result.
        rng = np.random.default_rng(22)
        sketches, helpers, batches, expected = [], [], [], []
        for _ in range(2):
            code = design_bch(40, 3)
            sketch = CodeOffsetSketch(code, 40)
            response = rng.integers(0, 2, size=40).astype(np.uint8)
            helper = sketch.generate(response, rng)
            noisy = noisy_batch(rng, response, 12, code.t + 2)
            sketches.append(sketch)
            helpers.append(helper)
            batches.append(noisy)
            expected.append(sketch.recover_batch(noisy, helper))
        plans = [sketch.plan_recover(noisy, helper)
                 for sketch, helper, noisy in zip(sketches, helpers,
                                                  batches)]
        kernel_stats.reset()
        outputs = run_kernels([workload for workload, _ in plans])
        assert kernel_stats.calls == 1
        for sketch, (_, state), output, (want_rec, want_ok) in zip(
                sketches, plans, outputs, expected):
            got_rec, got_ok = sketch.finish_recover(state, output)
            np.testing.assert_array_equal(want_rec, got_rec)
            np.testing.assert_array_equal(want_ok, got_ok)

    def test_syndrome_clean_batch_declares_no_work(self):
        rng = np.random.default_rng(23)
        code = design_bch(30, 2)
        sketch = SyndromeSketch(code, 30)
        response = rng.integers(0, 2, size=30).astype(np.uint8)
        helper = sketch.generate(response, rng)
        clean = np.tile(response, (5, 1))
        workload, state = sketch.plan_recover(clean, helper)
        assert workload is None
        recovered, ok = sketch.finish_recover(state, None)
        np.testing.assert_array_equal(recovered, clean)
        assert ok.all()
