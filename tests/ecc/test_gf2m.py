"""Tests for GF(2^m) arithmetic and GF(2) polynomial helpers."""

import numpy as np
import pytest

from repro.ecc.gf2m import (
    GF2m,
    PRIMITIVE_POLYNOMIALS,
    bits_to_poly,
    poly_degree,
    poly_divmod,
    poly_mul,
    poly_to_bits,
)


class TestPolyBitmasks:
    def test_degree(self):
        assert poly_degree(0) == -1
        assert poly_degree(1) == 0
        assert poly_degree(0b1011) == 3

    def test_carryless_multiplication(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2)
        assert poly_mul(0b11, 0b11) == 0b101
        # (x^2 + x + 1)(x + 1) = x^3 + 1
        assert poly_mul(0b111, 0b11) == 0b1001

    def test_divmod_identity(self, rng):
        for _ in range(50):
            dividend = int(rng.integers(0, 1 << 12))
            divisor = int(rng.integers(1, 1 << 6))
            quotient, remainder = poly_divmod(dividend, divisor)
            assert poly_mul(quotient, divisor) ^ remainder == dividend
            assert poly_degree(remainder) < poly_degree(divisor)

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            poly_divmod(0b101, 0)

    def test_bits_roundtrip(self):
        poly = 0b100101
        bits = poly_to_bits(poly, 8)
        assert bits_to_poly(bits) == poly

    def test_bits_overflow_rejected(self):
        with pytest.raises(ValueError):
            poly_to_bits(0b1111, 3)


class TestFieldConstruction:
    def test_all_default_moduli_are_primitive(self):
        for m in PRIMITIVE_POLYNOMIALS:
            field = GF2m(m)
            assert field.order == (1 << m) - 1

    def test_non_primitive_modulus_rejected(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive.
        with pytest.raises(ValueError):
            GF2m(4, 0b11111)

    def test_wrong_degree_rejected(self):
        with pytest.raises(ValueError):
            GF2m(4, 0b1011)

    def test_unsupported_sizes_rejected(self):
        with pytest.raises(ValueError):
            GF2m(1)
        with pytest.raises(ValueError):
            GF2m(17)


class TestFieldArithmetic:
    @pytest.fixture
    def field(self):
        return GF2m(4)

    def test_addition_is_xor(self, field):
        assert field.add(0b1010, 0b0110) == 0b1100

    def test_multiplicative_identity_and_zero(self, field):
        for a in range(field.size):
            assert field.mul(a, 1) == a
            assert field.mul(a, 0) == 0

    def test_inverses(self, field):
        for a in range(1, field.size):
            assert field.mul(a, field.inv(a)) == 1

    def test_zero_has_no_inverse(self, field):
        with pytest.raises(ZeroDivisionError):
            field.inv(0)

    def test_associativity_sampled(self, field, rng):
        for _ in range(100):
            a, b, c = rng.integers(0, field.size, 3)
            assert field.mul(field.mul(int(a), int(b)), int(c)) == \
                field.mul(int(a), field.mul(int(b), int(c)))

    def test_distributivity_sampled(self, field, rng):
        for _ in range(100):
            a, b, c = (int(v) for v in rng.integers(0, field.size, 3))
            assert field.mul(a, b ^ c) == \
                field.mul(a, b) ^ field.mul(a, c)

    def test_pow_matches_repeated_multiplication(self, field):
        a = 0b0110
        acc = 1
        for exponent in range(10):
            assert field.pow(a, exponent) == acc
            acc = field.mul(acc, a)

    def test_negative_exponent(self, field):
        a = 7
        assert field.mul(field.pow(a, -1), a) == 1

    def test_alpha_generates_group(self, field):
        seen = {field.alpha_pow(k) for k in range(field.order)}
        assert seen == set(range(1, field.size))

    def test_log_inverts_alpha_pow(self, field):
        for k in range(field.order):
            assert field.log_alpha(field.alpha_pow(k)) == k

    def test_out_of_range_element_rejected(self, field):
        with pytest.raises(ValueError):
            field.mul(16, 1)


class TestMinimalPolynomials:
    def test_cyclotomic_coset_structure(self):
        field = GF2m(4)
        assert field.cyclotomic_coset(1) == [1, 2, 4, 8]
        assert field.cyclotomic_coset(3) == [3, 6, 12, 9]
        assert field.cyclotomic_coset(5) == [5, 10]

    def test_known_minimal_polynomials_gf16(self):
        field = GF2m(4)  # modulus x^4 + x + 1
        assert field.minimal_polynomial(1) == 0b10011
        assert field.minimal_polynomial(3) == 0b11111
        assert field.minimal_polynomial(5) == 0b111
        assert field.minimal_polynomial(7) == 0b11001

    def test_minimal_polynomial_annihilates_element(self):
        field = GF2m(5)
        for exponent in (1, 3, 5, 7):
            poly_bits = poly_to_bits(
                field.minimal_polynomial(exponent), 6)
            value = field.poly_eval(poly_bits,
                                    field.alpha_pow(exponent))
            assert value == 0

    def test_poly_eval_horner(self):
        field = GF2m(3)
        # p(x) = x^2 + 1 at alpha: alpha^2 + 1
        bits = np.array([1, 0, 1], dtype=np.uint8)
        expected = field.pow(2, 2) ^ 1
        assert field.poly_eval(bits, 2) == expected


class TestArrayFieldOps:
    """The array-native ops must agree with their scalar counterparts."""

    @pytest.fixture
    def field(self):
        return GF2m(6)

    def test_mul_array_matches_scalar(self, field, rng):
        a = rng.integers(0, field.size, size=200)
        b = rng.integers(0, field.size, size=200)
        products = field.mul_array(a, b)
        for x, y, p in zip(a, b, products):
            assert int(p) == field.mul(int(x), int(y))

    def test_mul_array_broadcasts(self, field):
        a = np.arange(1, 9).reshape(4, 2)
        b = np.array([3])
        products = field.mul_array(a, b)
        assert products.shape == (4, 2)
        assert int(products[2, 1]) == field.mul(6, 3)

    def test_inv_and_div_array(self, field, rng):
        a = rng.integers(1, field.size, size=100)
        b = rng.integers(1, field.size, size=100)
        assert np.all(field.mul_array(a, field.inv_array(a)) == 1)
        quotients = field.div_array(a, b)
        for x, y, q in zip(a, b, quotients):
            assert int(q) == field.div(int(x), int(y))

    def test_inv_array_rejects_zero(self, field):
        with pytest.raises(ZeroDivisionError):
            field.inv_array(np.array([1, 0, 3]))

    def test_log_array_sentinel(self, field):
        logs = field.log_array(np.array([0, 1, 2]))
        assert logs[0] == -1
        assert logs[1] == field.log_alpha(1)
        assert logs[2] == field.log_alpha(2)

    def test_alpha_eval_batch_matches_horner(self, field, rng):
        # Random field-coefficient polynomials evaluated on a grid of
        # alpha powers (negative exponents included, as in the Chien
        # search) must match scalar Horner evaluation.
        coeffs = rng.integers(0, field.size, size=(10, 5))
        exponents = np.arange(-field.order, field.order, 7)
        values = field.alpha_eval_batch(coeffs, exponents)
        for r in range(coeffs.shape[0]):
            for c, exponent in enumerate(exponents):
                point = field.alpha_pow(int(exponent))
                expected = 0
                for degree in range(coeffs.shape[1] - 1, -1, -1):
                    expected = field.mul(expected, point) \
                        ^ int(coeffs[r, degree])
                assert int(values[r, c]) == expected

    def test_alpha_eval_batch_zero_polynomial(self, field):
        values = field.alpha_eval_batch(
            np.zeros((3, 4), dtype=np.int64), np.arange(5))
        assert not values.any()
