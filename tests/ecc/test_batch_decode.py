"""The vectorized decode engine must mirror the scalar paths bitwise.

Every batch entry point — ``decode_batch`` on each code family, the
lock-step Berlekamp–Massey / Chien kernel underneath BCH, sketch
``recover_batch`` and fuzzy ``reproduce_batch`` — is compared row for
row against its scalar reference on randomized workloads spanning error
weights from zero through beyond-``t`` failure rows.
"""

import numpy as np
import pytest

from repro._dedup import iter_unique_rows
from repro.ecc import (
    BlockwiseCode,
    HammingCode,
    ReedMullerCode,
    RepetitionCode,
    TrivialCode,
)
from repro.ecc.base import DecodingFailure
from repro.ecc.bch import BCHCode, design_bch
from repro.ecc.sketch import CodeOffsetSketch, SyndromeSketch
from repro.fuzzy.extractor import FuzzyExtractor


def corrupted_batch(code, rng, count=60, max_errors=None):
    """Codewords carrying 0..max_errors random bit errors each."""
    if max_errors is None:
        max_errors = code.t + 2
    words = np.empty((count, code.n), dtype=np.uint8)
    for i in range(count):
        codeword = code.encode(
            rng.integers(0, 2, size=code.k).astype(np.uint8))
        flips = rng.choice(code.n, size=int(rng.integers(
            0, max_errors + 1)), replace=False)
        codeword[flips] ^= 1
        words[i] = codeword
    return words


def assert_matches_scalar(code, words):
    """Row-for-row equivalence of ``decode_batch`` with ``decode``."""
    decoded, ok = code.decode_batch(words)
    for i, word in enumerate(words):
        try:
            expected = code.decode(word)
        except DecodingFailure:
            assert not ok[i]
            assert not decoded[i].any()
        else:
            assert ok[i]
            np.testing.assert_array_equal(expected, decoded[i])


BCH_CODES = [
    BCHCode(5, 2),                # unshortened, small field
    BCHCode(6, 3),                # unshortened, medium field
    design_bch(60, 3),            # shortened
    design_bch(32, 5),            # shortened, high t
]


class TestBCHDecodeBatch:
    @pytest.fixture
    def code(self):
        return design_bch(60, 3)

    @pytest.mark.parametrize("code", BCH_CODES, ids=repr)
    def test_matches_scalar_decode(self, code):
        rng = np.random.default_rng(0)
        words = corrupted_batch(code, rng)
        assert_matches_scalar(code, words)

    @pytest.mark.parametrize("code", BCH_CODES, ids=repr)
    def test_beyond_t_and_random_words(self, code):
        # Far beyond the radius: random words, weight-2t patterns —
        # exercising locator-degree, root-count and verification
        # failures in the batch kernel.
        rng = np.random.default_rng(10)
        words = corrupted_batch(code, rng, count=40,
                                max_errors=2 * code.t)
        words[:10] = rng.integers(0, 2, size=(10, code.n))
        assert_matches_scalar(code, words)

    def test_batch_syndromes_match_scalar(self, code):
        rng = np.random.default_rng(1)
        words = corrupted_batch(code, rng, count=20)
        batch = code.syndromes_batch(words)
        for i, word in enumerate(words):
            full = np.zeros(code._full_n, dtype=np.uint8)
            full[:code.n] = word
            assert batch[i].tolist() == code._syndromes(full)

    @pytest.mark.parametrize("code", BCH_CODES, ids=repr)
    def test_batch_berlekamp_massey_coefficients(self, code):
        # The lock-step BM must reproduce the scalar locator exactly,
        # including for beyond-t rows where the degree exceeds t.
        rng = np.random.default_rng(2)
        words = corrupted_batch(code, rng, count=40,
                                max_errors=2 * code.t)
        syndromes = code.syndromes_batch(words)
        sigma = code._berlekamp_massey_batch(syndromes)
        for i in range(words.shape[0]):
            expected = code._berlekamp_massey(
                [int(s) for s in syndromes[i]])
            observed = [int(c) for c in sigma[i]]
            while len(observed) > 1 and observed[-1] == 0:
                observed.pop()
            assert observed == expected

    def test_solve_syndromes_batch_shape_validation(self, code):
        with pytest.raises(ValueError):
            code.solve_syndromes_batch(
                np.zeros((4, 2 * code.t + 1), dtype=np.int64))

    def test_zero_syndrome_rows_resolve_clean(self, code):
        errors, ok = code.solve_syndromes_batch(
            np.zeros((3, 2 * code.t), dtype=np.int64))
        assert ok.all()
        assert not errors.any()

    def test_shape_validation(self, code):
        with pytest.raises(ValueError):
            code.decode_batch(np.zeros((4, code.n + 1), dtype=np.uint8))

    def test_unshortened_code(self):
        code = BCHCode(5, 2)
        rng = np.random.default_rng(2)
        words = corrupted_batch(code, rng, count=30)
        decoded, ok = code.decode_batch(words)
        assert ok.any() and (~ok).any()


class TestReedMullerDecodeBatch:
    @pytest.mark.parametrize("m", [3, 4, 5])
    def test_matches_scalar_decode(self, m):
        code = ReedMullerCode(m)
        rng = np.random.default_rng(m)
        words = corrupted_batch(code, rng, count=50)
        assert_matches_scalar(code, words)

    @pytest.mark.parametrize("m", [3, 4])
    def test_random_words_tie_handling(self, m):
        # Pure-random words hit spectral ties; argmax order must match.
        code = ReedMullerCode(m)
        rng = np.random.default_rng(20 + m)
        words = rng.integers(0, 2,
                             size=(64, code.n)).astype(np.uint8)
        assert_matches_scalar(code, words)


class TestSimpleCodesDecodeBatch:
    @pytest.mark.parametrize("code", [
        TrivialCode(9),
        RepetitionCode(7),
        HammingCode(3),
        BlockwiseCode(BCHCode(5, 2), 3),
        BlockwiseCode(ReedMullerCode(4), 2),
    ], ids=repr)
    def test_matches_scalar_decode(self, code):
        rng = np.random.default_rng(5)
        words = rng.integers(0, 2,
                             size=(40, code.n)).astype(np.uint8)
        assert_matches_scalar(code, words)

    def test_blockwise_partial_failure_zeroes_row(self):
        # One overflowing block fails the whole word, matching scalar.
        inner = BCHCode(5, 2)
        code = BlockwiseCode(inner, 2)
        rng = np.random.default_rng(6)
        words = corrupted_batch(code, rng, count=30,
                                max_errors=2 * inner.t)
        decoded, ok = code.decode_batch(words)
        assert (~ok).any()
        assert not decoded[~ok].any()


class TestSketchRecoverBatch:
    def test_code_offset_matches_scalar(self):
        code = design_bch(40, 2)
        sketch = CodeOffsetSketch(code, 40)
        rng = np.random.default_rng(3)
        response = rng.integers(0, 2, size=40).astype(np.uint8)
        helper = sketch.generate(response, rng)
        batch = np.tile(response, (50, 1))
        for i in range(50):
            flips = rng.choice(40, size=int(rng.integers(0, 5)),
                               replace=False)
            batch[i, flips] ^= 1
        recovered, ok = sketch.recover_batch(batch, helper)
        for i in range(50):
            try:
                expected = sketch.recover(batch[i], helper)
            except DecodingFailure:
                assert not ok[i]
            else:
                assert ok[i]
                np.testing.assert_array_equal(expected, recovered[i])

    @pytest.mark.parametrize("length", [30, 63])
    def test_syndrome_sketch_matches_scalar(self, length):
        # Vectorized syndrome-difference recovery, including rows past
        # the radius and corrections the scalar path rejects for
        # landing outside the response bits.
        code = BCHCode(6, 3)
        sketch = SyndromeSketch(code, length)
        rng = np.random.default_rng(4)
        response = rng.integers(0, 2, size=length).astype(np.uint8)
        helper = sketch.generate(response)
        batch = np.tile(response, (60, 1))
        for i in range(60):
            flips = rng.choice(length,
                               size=int(rng.integers(0, code.t + 3)),
                               replace=False)
            batch[i, flips] ^= 1
        recovered, ok = sketch.recover_batch(batch, helper)
        assert ok.any()
        for i in range(60):
            try:
                expected = sketch.recover(batch[i], helper)
            except DecodingFailure:
                assert not ok[i]
                assert not recovered[i].any()
            else:
                assert ok[i]
                np.testing.assert_array_equal(expected, recovered[i])


class TestFuzzyReproduceBatch:
    def test_matches_scalar_reproduce(self):
        code = design_bch(40, 3)
        sketch = CodeOffsetSketch(code, 40)
        extractor = FuzzyExtractor(sketch, 16)
        rng = np.random.default_rng(5)
        response = rng.integers(0, 2, size=40).astype(np.uint8)
        key, helper = extractor.generate(response, rng)
        batch = np.tile(response, (40, 1))
        for i in range(40):
            flips = rng.choice(40, size=int(rng.integers(0, 6)),
                               replace=False)
            batch[i, flips] ^= 1
        keys, ok = extractor.reproduce_batch(batch, helper)
        for i in range(40):
            try:
                expected = extractor.reproduce(batch[i], helper)
            except DecodingFailure:
                assert not ok[i]
            else:
                assert ok[i]
                np.testing.assert_array_equal(expected, keys[i])

    def test_high_noise_round_trip(self):
        # Every reading distinct, error weights straddling t: the
        # round-trip key must come back exactly on the correctable rows
        # and the failure mask must match the scalar path on the rest.
        code = design_bch(64, 5)
        extractor = FuzzyExtractor(CodeOffsetSketch(code, 64), 32)
        rng = np.random.default_rng(6)
        response = rng.integers(0, 2, size=64).astype(np.uint8)
        key, helper = extractor.generate(response, rng)
        batch = np.tile(response, (80, 1))
        weights = rng.integers(1, code.t + 3, size=80)
        for i in range(80):
            flips = rng.choice(64, size=int(weights[i]), replace=False)
            batch[i, flips] ^= 1
        keys, ok = extractor.reproduce_batch(batch, helper)
        assert ok.any() and (~ok).any()
        np.testing.assert_array_equal(
            keys[ok], np.tile(key, (int(ok.sum()), 1)))
        assert not keys[~ok].any()
        for i in range(80):
            try:
                extractor.reproduce(batch[i], helper)
            except DecodingFailure:
                assert not ok[i]
            else:
                assert ok[i]


class TestDecodeBatchAgainstDedupFallback:
    """The engine must agree with the pre-engine dedup+scalar strategy."""

    @pytest.mark.parametrize("code", BCH_CODES[:2], ids=repr)
    def test_same_results_as_dedup_strategy(self, code):
        rng = np.random.default_rng(8)
        words = corrupted_batch(code, rng, count=50)
        reference = np.zeros_like(words)
        reference_ok = np.zeros(words.shape[0], dtype=bool)
        for word, rows in iter_unique_rows(words):
            try:
                reference[rows] = code.decode(word)
            except DecodingFailure:
                continue
            reference_ok[rows] = True
        decoded, ok = code.decode_batch(words)
        np.testing.assert_array_equal(reference, decoded)
        np.testing.assert_array_equal(reference_ok, ok)
