"""Batch ECC decode and sketch recovery must mirror the scalar paths."""

import numpy as np
import pytest

from repro.ecc.base import DecodingFailure
from repro.ecc.bch import BCHCode, design_bch
from repro.ecc.sketch import CodeOffsetSketch, SyndromeSketch
from repro.fuzzy.extractor import FuzzyExtractor


def corrupted_batch(code, rng, count=60, max_errors=None):
    """Codewords carrying 0..max_errors random bit errors each."""
    if max_errors is None:
        max_errors = code.t + 2
    words = np.empty((count, code.n), dtype=np.uint8)
    for i in range(count):
        codeword = code.encode(
            rng.integers(0, 2, size=code.k).astype(np.uint8))
        flips = rng.choice(code.n, size=int(rng.integers(
            0, max_errors + 1)), replace=False)
        codeword[flips] ^= 1
        words[i] = codeword
    return words


class TestBCHDecodeBatch:
    @pytest.fixture
    def code(self):
        return design_bch(60, 3)

    def test_matches_scalar_decode(self, code):
        rng = np.random.default_rng(0)
        words = corrupted_batch(code, rng)
        decoded, ok = code.decode_batch(words)
        for i, word in enumerate(words):
            try:
                expected = code.decode(word)
            except DecodingFailure:
                assert not ok[i]
                assert not decoded[i].any()
            else:
                assert ok[i]
                np.testing.assert_array_equal(expected, decoded[i])

    def test_batch_syndromes_match_scalar(self, code):
        rng = np.random.default_rng(1)
        words = corrupted_batch(code, rng, count=20)
        batch = code.syndromes_batch(words)
        for i, word in enumerate(words):
            full = np.zeros(code._full_n, dtype=np.uint8)
            full[:code.n] = word
            assert batch[i].tolist() == code._syndromes(full)

    def test_shape_validation(self, code):
        with pytest.raises(ValueError):
            code.decode_batch(np.zeros((4, code.n + 1), dtype=np.uint8))

    def test_unshortened_code(self):
        code = BCHCode(5, 2)
        rng = np.random.default_rng(2)
        words = corrupted_batch(code, rng, count=30)
        decoded, ok = code.decode_batch(words)
        assert ok.any() and (~ok).any()


class TestSketchRecoverBatch:
    def test_code_offset_matches_scalar(self):
        code = design_bch(40, 2)
        sketch = CodeOffsetSketch(code, 40)
        rng = np.random.default_rng(3)
        response = rng.integers(0, 2, size=40).astype(np.uint8)
        helper = sketch.generate(response, rng)
        batch = np.tile(response, (50, 1))
        for i in range(50):
            flips = rng.choice(40, size=int(rng.integers(0, 5)),
                               replace=False)
            batch[i, flips] ^= 1
        recovered, ok = sketch.recover_batch(batch, helper)
        for i in range(50):
            try:
                expected = sketch.recover(batch[i], helper)
            except DecodingFailure:
                assert not ok[i]
            else:
                assert ok[i]
                np.testing.assert_array_equal(expected, recovered[i])

    def test_syndrome_sketch_uses_fallback(self):
        code = BCHCode(6, 3)
        sketch = SyndromeSketch(code, 30)
        rng = np.random.default_rng(4)
        response = rng.integers(0, 2, size=30).astype(np.uint8)
        helper = sketch.generate(response)
        batch = np.tile(response, (8, 1))
        batch[3, :5] ^= 1
        batch[5, 2] ^= 1
        recovered, ok = sketch.recover_batch(batch, helper)
        assert ok[0] and ok[5]
        np.testing.assert_array_equal(recovered[5], response)


class TestFuzzyReproduceBatch:
    def test_matches_scalar_reproduce(self):
        code = design_bch(40, 3)
        sketch = CodeOffsetSketch(code, 40)
        extractor = FuzzyExtractor(sketch, 16)
        rng = np.random.default_rng(5)
        response = rng.integers(0, 2, size=40).astype(np.uint8)
        key, helper = extractor.generate(response, rng)
        batch = np.tile(response, (40, 1))
        for i in range(40):
            flips = rng.choice(40, size=int(rng.integers(0, 6)),
                               replace=False)
            batch[i, flips] ^= 1
        keys, ok = extractor.reproduce_batch(batch, helper)
        for i in range(40):
            try:
                expected = extractor.reproduce(batch[i], helper)
            except DecodingFailure:
                assert not ok[i]
            else:
                assert ok[i]
                np.testing.assert_array_equal(expected, keys[i])
