"""Smoke tests: every shipped example must run end to end."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES,
                         ids=[path.stem for path in EXAMPLES])
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"
    assert "Traceback" not in out


def test_example_inventory():
    # The README promises at least quickstart + attack walkthroughs.
    names = {path.stem for path in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
