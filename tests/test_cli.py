"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestTable1:
    def test_prints_24_rows(self, capsys):
        assert main(["table1"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 25  # header + 24 orders
        assert lines[1].split()[:3] == ["ABCD", "00000", "000000"]


class TestClassify:
    def test_reports_all_classes(self, capsys):
        assert main(["classify", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        for kind in ("good", "bad", "cooperating", "marginal"):
            assert kind in out


class TestAttack:
    def test_masking_attack_succeeds(self, capsys):
        assert main(["attack", "masking", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "recovered    : yes" in out

    def test_sequential_attack_sprt(self, capsys):
        assert main(["attack", "sequential", "--seed", "2",
                     "--method", "sprt"]) == 0
        out = capsys.readouterr().out
        assert "recovered    : yes" in out

    def test_unknown_construction_rejected(self):
        with pytest.raises(SystemExit):
            main(["attack", "bogus"])


class TestAnalyze:
    def test_population_summary(self, capsys):
        assert main(["analyze", "--devices", "4"]) == 0
        out = capsys.readouterr().out
        assert "entropy budget" in out
        assert "inter-device distance" in out


class TestFleet:
    def test_sweep_summary(self, capsys):
        assert main(["fleet", "--devices", "3", "--trials", "20"]) == 0
        out = capsys.readouterr().out
        assert "key uniqueness" in out
        assert "P(fail)" in out

    def test_workers_do_not_change_the_report(self, capsys):
        base_args = ["fleet", "--devices", "3", "--trials", "20",
                     "--seed", "5"]
        assert main(base_args + ["--workers", "1"]) == 0
        sequential = capsys.readouterr().out
        assert main(base_args + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out

        def stats(report):
            return [line for line in report.splitlines()
                    if "sweep time" not in line and "workers" not in line]

        assert stats(sequential) == stats(parallel)

    def test_fused_knob_does_not_change_the_campaign(self, capsys):
        # --fused / --no-fused select cross-device kernel fusion in
        # the lock-step rounds; recovered keys and query bills must be
        # identical, and the engine line must name the mode.
        base_args = ["fleet", "--devices", "2", "--attack",
                     "sequential", "--seed", "3"]
        assert main(base_args + ["--fused"]) == 0
        fused = capsys.readouterr().out
        assert "fused kernels" in fused
        assert main(base_args + ["--no-fused"]) == 0
        per_device = capsys.readouterr().out
        assert "per-device kernels" in per_device

        def stats(report):
            return [line for line in report.splitlines()
                    if "time" not in line and "engine" not in line]

        assert stats(fused) == stats(per_device)


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestWarehouse:
    CELL = "distiller[masking]/distiller/baseline"

    def run_quick(self, store, commit, seed=0, extra=()):
        return main(["warehouse", "run", "--quick", "--cells",
                     self.CELL, "--store", str(store), "--commit",
                     commit, "--seed", str(seed), *extra])

    def test_run_appends_and_reports(self, tmp_path, capsys):
        store = tmp_path / "results.jsonl"
        assert self.run_quick(store, "c1") == 0
        out = capsys.readouterr().out
        assert "appended 1 records" in out
        assert "1 ok / 0 n/a / 0 error" in out
        assert store.exists()

    def test_check_reproducible_passes(self, tmp_path, capsys):
        store = tmp_path / "results.jsonl"
        assert self.run_quick(store, "c1",
                              extra=["--check-reproducible"]) == 0
        assert "reproducibility check ok" in capsys.readouterr().out

    def test_verify_and_diff(self, tmp_path, capsys):
        store = tmp_path / "results.jsonl"
        assert self.run_quick(store, "c1") == 0
        assert self.run_quick(store, "c2") == 0
        capsys.readouterr()

        assert main(["warehouse", "verify", "--store",
                     str(store)]) == 0
        assert "bitwise-reproducible" in capsys.readouterr().out

        assert main(["warehouse", "diff", "c1", "c2", "--store",
                     str(store), "--fail-on-security-drift"]) == 0
        assert "0 security change(s)" in capsys.readouterr().out

    def test_diff_unknown_commit(self, tmp_path, capsys):
        store = tmp_path / "results.jsonl"
        assert self.run_quick(store, "c1") == 0
        capsys.readouterr()
        assert main(["warehouse", "diff", "c1", "nope", "--store",
                     str(store)]) == 2
        assert "not in the store" in capsys.readouterr().out

    def test_summary_and_trajectory(self, tmp_path, capsys):
        store = tmp_path / "results.jsonl"
        summary = tmp_path / "BENCH_smoke.json"
        assert self.run_quick(store, "c1",
                              extra=["--summary", str(summary)]) == 0
        assert self.run_quick(store, "c2",
                              extra=["--summary", str(summary)]) == 0
        capsys.readouterr()
        assert main(["warehouse", "trajectory", str(summary)]) == 0
        out = capsys.readouterr().out
        assert "smoke: 2 entries" in out
        assert "no drift on the newest entry" in out

    def test_no_matching_cells(self, tmp_path, capsys):
        assert main(["warehouse", "run", "--quick", "--cells",
                     "no-such/*", "--store",
                     str(tmp_path / "s.jsonl"), "--commit", "c1"]) == 2
        assert "no cells match" in capsys.readouterr().out


class TestWarehouseResume:
    """Checkpoint/resume and the disjoint verify exit codes."""

    PATTERN = "sequential/*"  # 12 quick cells, 2 runnable

    def run_slice(self, store, commit, extra=()):
        return main(["warehouse", "run", "--quick", "--cells",
                     self.PATTERN, "--store", str(store), "--commit",
                     commit, "--seed", "0", *extra])

    def verify_slice(self, store, commit, extra=()):
        return main(["warehouse", "verify", "--store", str(store),
                     "--matrix", "quick", "--cells", self.PATTERN,
                     "--commit", commit, "--seed", "0", *extra])

    def test_interrupt_then_resume_completes_once(self, tmp_path,
                                                  capsys):
        store = tmp_path / "results.jsonl"
        assert self.run_slice(store, "c1",
                              extra=["--stop-after", "2"]) == 3
        out = capsys.readouterr().out
        assert "appended 2 records" in out
        assert "rerun with --resume" in out
        # The store is incomplete for the slice: verify says so with
        # its dedicated exit code.
        assert self.verify_slice(store, "c1") == 3
        assert "FAIL (store missing cells)" in capsys.readouterr().out
        # Resume completes the matrix under the same config hash...
        assert self.run_slice(store, "c1", extra=["--resume"]) == 0
        out = capsys.readouterr().out
        assert "2 already recorded" in out
        assert "appended 10 records" in out
        assert "matrix complete:" in out
        # ...with every cell recorded exactly once.
        assert self.verify_slice(store, "c1", extra=["--once"]) == 0
        assert "exactly once" in capsys.readouterr().out

    def test_resume_of_complete_run_executes_nothing(self, tmp_path,
                                                     capsys):
        store = tmp_path / "results.jsonl"
        assert self.run_slice(store, "c1") == 0
        capsys.readouterr()
        assert self.run_slice(store, "c1", extra=["--resume"]) == 0
        out = capsys.readouterr().out
        assert "12 already recorded" in out
        assert "appended 0 records" in out

    def test_verify_once_flags_duplicates(self, tmp_path, capsys):
        store = tmp_path / "results.jsonl"
        assert self.run_slice(store, "c1") == 0
        # A second full run (no --resume) appends duplicate records:
        # legal for the identity check, fatal for --once.
        assert self.run_slice(store, "c1") == 0
        capsys.readouterr()
        assert self.verify_slice(store, "c1") == 0
        assert self.verify_slice(store, "c1", extra=["--once"]) == 4
        assert "FAIL (duplicate records)" in capsys.readouterr().out

    def test_verify_usage_and_missing_store(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["warehouse", "verify", "--store",
                     str(missing)]) == 2
        assert "FAIL (missing store)" in capsys.readouterr().out
        store = tmp_path / "results.jsonl"
        assert self.run_slice(store, "c1",
                              extra=["--stop-after", "1"]) == 3
        capsys.readouterr()
        assert main(["warehouse", "verify", "--store", str(store),
                     "--once"]) == 2
        assert "FAIL (usage)" in capsys.readouterr().out

    def test_verify_identity_mismatch(self, tmp_path, capsys):
        store = tmp_path / "results.jsonl"
        assert self.run_slice(store, "c1",
                              extra=["--stop-after", "1"]) == 3
        capsys.readouterr()
        # Re-append the first record with a tampered security layer:
        # same key, different identity.
        lines = store.read_text().strip().splitlines()
        record = json.loads(lines[0])
        record["security"] = {"tampered": True}
        with store.open("a") as handle:
            handle.write(json.dumps(record) + "\n")
        assert main(["warehouse", "verify", "--store",
                     str(store)]) == 1
        out = capsys.readouterr().out
        assert "FAIL (identity mismatch)" in out
        assert "identity drifted" in out


class TestScenarioConformanceResume:
    def conformance(self, store, extra=()):
        return main(["scenario", "conformance", "--quick", "--store",
                     str(store), "--commit", "c1", *extra])

    def test_interrupt_then_resume(self, tmp_path, capsys):
        store = tmp_path / "conformance.jsonl"
        assert self.conformance(store, ["--stop-after", "1"]) == 3
        out = capsys.readouterr().out
        assert "appended 1 records" in out
        assert "rerun with --resume" in out
        assert self.conformance(store, ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "1 already recorded" in out
        assert "every cell in its pass-band" in out
        # A second resume finds everything recorded and re-runs
        # nothing.
        assert self.conformance(store, ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "appended" not in out

    def test_resume_requires_store(self, capsys):
        assert main(["scenario", "conformance", "--quick",
                     "--resume"]) == 2
        assert "--resume needs --store" in capsys.readouterr().out


class TestFleetSupervised:
    PLAN = ('{"seed":1,"faults":[{"chunk":0,"mode":"crash",'
            '"attempts":[0]}]}')

    def test_supervised_sweep_recovers_and_reproduces(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", self.PLAN)
        report = tmp_path / "failures.json"
        assert main(["fleet", "--devices", "3", "--trials", "20",
                     "--seed", "5", "--workers", "2",
                     "--max-retries", "2", "--failure-report",
                     str(report), "--check-reproducible"]) == 0
        out = capsys.readouterr().out
        assert "supervised sweep" in out
        assert "recovered" in out
        assert "reproducibility" in out and "ok" in out
        payload = json.loads(report.read_text())
        assert payload["failures"] >= 1
        assert "crash" in payload["counts"]

    def test_supervised_attack_campaign_reproduces(
            self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", self.PLAN)
        assert main(["fleet", "--devices", "2", "--attack",
                     "sequential", "--seed", "3", "--workers", "2",
                     "--max-retries", "1",
                     "--check-reproducible"]) == 0
        out = capsys.readouterr().out
        assert "supervised sweep" in out
        assert "reproducibility" in out

    def test_unsupervised_fleet_ignores_plan(self, capsys,
                                             monkeypatch):
        # Without a supervision knob the plain pool runs and never
        # consults the fault plan: same report as the clean run.
        base = ["fleet", "--devices", "3", "--trials", "20",
                "--seed", "5", "--workers", "2"]
        assert main(base) == 0
        clean = capsys.readouterr().out
        monkeypatch.setenv("REPRO_FAULT_PLAN", self.PLAN)
        assert main(base) == 0
        faulted = capsys.readouterr().out

        def stats(report):
            return [line for line in report.splitlines()
                    if "time" not in line]

        assert stats(clean) == stats(faulted)
