"""Constant trajectories are bitwise-identical to the scalar path.

Satellite of the scenario-engine PR: for all five keygen
constructions, a ``BatchOracle`` driven by a constant
:class:`TrajectorySpec` pinned at ``(T, V)`` must produce outcomes
byte-for-byte equal to a twin device queried the historical way at
``OperatingPoint(T, V)`` — through both the one-shot batch evaluator
and the two-phase plan/finalize driver — and the fleet sweeps must
preserve the same identity.
"""

import numpy as np
import pytest

from repro.core import BatchOracle
from repro.fleet import Fleet
from repro.keygen import (
    DistillerPairingKeyGen,
    FuzzyExtractorKeyGen,
    GroupBasedKeyGen,
    OperatingPoint,
    SequentialPairingKeyGen,
    TempAwareKeyGen,
)
from repro.puf import ROArray, ROArrayParams
from repro.scenario import AgingDrift, TrajectorySpec

NOISY = ROArrayParams(rows=8, cols=16, sigma_noise=300e3)
SMALL = ROArrayParams(rows=4, cols=10, sigma_noise=120e3)

TEMP, VOLT = 45.0, 1.26

SCHEMES = {
    "sequential": (NOISY,
                   lambda: SequentialPairingKeyGen(threshold=250e3)),
    "temp-aware": (NOISY,
                   lambda: TempAwareKeyGen(t_min=-10, t_max=80,
                                           threshold=150e3,
                                           sensor_seed=71)),
    "group-based": (SMALL,
                    lambda: GroupBasedKeyGen(group_threshold=120e3)),
    "distiller": (SMALL,
                  lambda: DistillerPairingKeyGen(
                      4, 10, pairing_mode="neighbor-disjoint", k=5)),
    "fuzzy": (SMALL, lambda: FuzzyExtractorKeyGen(4, 10,
                                                  out_bits=16)),
}


def oracle_pair(params, make_keygen, trajectory_spec,
                device_seed=77, enroll_seed=5,
                op=OperatingPoint()):
    """Twin devices: a trajectory-driven oracle and a scalar one.

    Separate keygen instances (from the same factory and seeds) keep
    per-instance transient streams — the temp-aware sensor — from
    interleaving between the two oracles.
    """
    scalar_array = ROArray(params, rng=device_seed)
    traj_array = ROArray(params, rng=device_seed)
    scalar_keygen, traj_keygen = make_keygen(), make_keygen()
    helper_s, key_s = scalar_keygen.enroll(scalar_array,
                                           rng=enroll_seed)
    helper_t, key_t = traj_keygen.enroll(traj_array, rng=enroll_seed)
    np.testing.assert_array_equal(key_s, key_t)
    trajectory = trajectory_spec.build(params, 0)
    return (BatchOracle(scalar_array, scalar_keygen, op=op),
            helper_s,
            BatchOracle(traj_array, traj_keygen, op=op,
                        trajectory=trajectory),
            helper_t)


class TestConstantTrajectoryEquivalence:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_oneshot_outcomes_bitwise_equal(self, scheme):
        params, make_keygen = SCHEMES[scheme]
        spec = TrajectorySpec.constant(temperature=TEMP, voltage=VOLT)
        scalar, h_s, trajectory, h_t = oracle_pair(
            params, make_keygen, spec,
            op=OperatingPoint(TEMP, VOLT))
        expected = scalar.evaluate_rows_oneshot(
            h_s, scalar.take_rows(96))
        observed = trajectory.evaluate_rows_oneshot(
            h_t, trajectory.take_rows(96))
        np.testing.assert_array_equal(expected, observed)

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_two_phase_driver_bitwise_equal(self, scheme):
        params, make_keygen = SCHEMES[scheme]
        spec = TrajectorySpec.constant(temperature=TEMP, voltage=VOLT)
        scalar, h_s, trajectory, h_t = oracle_pair(
            params, make_keygen, spec,
            op=OperatingPoint(TEMP, VOLT))
        expected = scalar.evaluate_rows(h_s, scalar.take_rows(96))
        observed = trajectory.evaluate_rows(
            h_t, trajectory.take_rows(96))
        np.testing.assert_array_equal(expected, observed)

    def test_nominal_constant_equals_default_op(self):
        params, make_keygen = SCHEMES["sequential"]
        scalar, h_s, trajectory, h_t = oracle_pair(
            params, make_keygen, TrajectorySpec())
        np.testing.assert_array_equal(
            scalar.evaluate_rows_oneshot(h_s, scalar.take_rows(64)),
            trajectory.evaluate_rows_oneshot(
                h_t, trajectory.take_rows(64)))

    def test_blocking_invariance_under_trajectory(self):
        params, make_keygen = SCHEMES["sequential"]
        spec = TrajectorySpec.constant(temperature=TEMP)
        outcomes = []
        for blocks in ([90], [13, 51, 26], [1] * 90):
            _, _, oracle, helper = oracle_pair(params, make_keygen,
                                               spec)
            outcomes.append(np.concatenate(
                [oracle.evaluate_rows_oneshot(
                    helper, oracle.take_rows(block))
                 for block in blocks]))
        for observed in outcomes[1:]:
            np.testing.assert_array_equal(outcomes[0], observed)


class TestExplicitOpOverride:
    def test_explicit_op_bypasses_ambient_trajectory(self):
        """Attacker-chamber queries ignore the device's ambient."""
        params, make_keygen = SCHEMES["sequential"]
        hot = TrajectorySpec.constant(temperature=80.0)
        scalar, h_s, trajectory, h_t = oracle_pair(
            params, make_keygen, hot)
        chamber = OperatingPoint(temperature=25.0)
        expected = scalar.evaluate_rows_oneshot(
            h_s, scalar.take_rows(64), op=chamber)
        observed = trajectory.evaluate_rows_oneshot(
            h_t, trajectory.take_rows(64), op=chamber)
        np.testing.assert_array_equal(expected, observed)

    def test_aging_applies_even_under_explicit_op(self):
        """Aging is device state: no chamber can undo it."""
        params, make_keygen = SCHEMES["sequential"]
        aged_spec = TrajectorySpec(
            terms=(AgingDrift(years=25.0, drift_sigma=400e3),),
            seed=11)
        scalar, h_s, aged, h_t = oracle_pair(params, make_keygen,
                                             aged_spec)
        chamber = OperatingPoint(temperature=25.0)
        fresh = scalar.evaluate_rows_oneshot(
            h_s, scalar.take_rows(64), op=chamber)
        drifted = aged.evaluate_rows_oneshot(
            h_t, aged.take_rows(64), op=chamber)
        assert fresh.mean() > drifted.mean()


class TestFleetSweepEquivalence:
    def test_failure_rates_constant_trajectory_bitwise(self):
        spec = TrajectorySpec.constant(temperature=TEMP, voltage=VOLT)
        op = OperatingPoint(TEMP, VOLT)
        rates = []
        for trajectory, point in ((None, op), (spec, None)):
            fleet = Fleet(NOISY, size=3,
                          seed=np.random.default_rng(31))
            enrollment = fleet.enroll(
                SCHEMES["sequential"][1],
                seed=np.random.default_rng(7))
            rates.append(fleet.failure_rates(
                enrollment, trials=50, op=point,
                trajectory=trajectory))
        np.testing.assert_array_equal(rates[0], rates[1])

    def test_failure_rates_worker_invariant_under_trajectory(self):
        from repro.scenario import TemperatureRamp, VoltageNoise
        spec = TrajectorySpec(terms=(TemperatureRamp(0, 30, 40),
                                     VoltageNoise(0.03),
                                     AgingDrift(years=2.0)), seed=5)
        rates = []
        for workers, chunk in ((1, 1024), (2, 16)):
            fleet = Fleet(NOISY, size=4,
                          seed=np.random.default_rng(13))
            enrollment = fleet.enroll(
                SCHEMES["sequential"][1],
                seed=np.random.default_rng(3))
            rates.append(fleet.failure_rates(
                enrollment, trials=60, chunk=chunk, workers=workers,
                trajectory=spec))
        np.testing.assert_array_equal(rates[0], rates[1])
