"""Unit tests for the environment & lifecycle trajectory engine."""

import pickle

import numpy as np
import pytest

from repro.puf import ROArrayParams
from repro.scenario import (
    AgingDrift,
    EnvironmentTrajectory,
    TemperatureCycle,
    TemperatureRamp,
    TrajectorySpec,
    VoltageNoise,
)

PARAMS = ROArrayParams(rows=4, cols=8)


def build(spec, device_index=0):
    return spec.build(PARAMS, device_index)


class TestTermSemantics:
    def test_constant_spec_resolves_nominal_point(self):
        env = build(TrajectorySpec()).sample(np.arange(5))
        np.testing.assert_array_equal(
            env.temperatures, np.full(5, PARAMS.temp_nominal))
        np.testing.assert_array_equal(
            env.voltages, np.full(5, PARAMS.v_nominal))

    def test_constant_spec_with_explicit_point(self):
        spec = TrajectorySpec.constant(temperature=60.0, voltage=1.1)
        env = build(spec).sample(np.arange(3))
        assert set(env.temperatures) == {60.0}
        assert set(env.voltages) == {1.1}

    def test_ramp_moves_linearly_then_holds(self):
        spec = TrajectorySpec(terms=(TemperatureRamp(0.0, 30.0,
                                                     queries=4),))
        env = build(spec).sample(np.arange(7))
        expected = PARAMS.temp_nominal + np.array(
            [0.0, 10.0, 20.0, 30.0, 30.0, 30.0, 30.0])
        np.testing.assert_allclose(env.temperatures, expected)
        np.testing.assert_array_equal(
            env.voltages, np.full(7, PARAMS.v_nominal))

    def test_cycle_is_sinusoidal_with_period(self):
        spec = TrajectorySpec(terms=(TemperatureCycle(amplitude=10.0,
                                                      period=8.0),))
        env = build(spec).sample(np.arange(17))
        np.testing.assert_allclose(env.temperatures[0],
                                   env.temperatures[8])
        np.testing.assert_allclose(
            env.temperatures[2], PARAMS.temp_nominal + 10.0)
        np.testing.assert_allclose(
            env.temperatures[6], PARAMS.temp_nominal - 10.0)

    def test_terms_compose_additively(self):
        ramp = TemperatureRamp(0.0, 8.0, queries=5)
        cycle = TemperatureCycle(amplitude=3.0, period=4.0)
        combined = build(TrajectorySpec(terms=(ramp, cycle)))
        alone = (build(TrajectorySpec(terms=(ramp,))),
                 build(TrajectorySpec(terms=(cycle,))))
        indices = np.arange(12)
        expected = (alone[0].sample(indices).temperatures
                    + alone[1].sample(indices).temperatures
                    - PARAMS.temp_nominal)
        np.testing.assert_allclose(
            combined.sample(indices).temperatures, expected)

    def test_voltage_noise_leaves_temperature_alone(self):
        spec = TrajectorySpec(terms=(VoltageNoise(sigma=0.05),),
                              seed=3)
        env = build(spec).sample(np.arange(200))
        np.testing.assert_array_equal(
            env.temperatures, np.full(200, PARAMS.temp_nominal))
        spread = env.voltages - PARAMS.v_nominal
        assert spread.std() == pytest.approx(0.05, rel=0.25)

    def test_aging_shift_scales_with_sqrt_years(self):
        quiet = build(TrajectorySpec(
            terms=(AgingDrift(years=1.0, drift_sigma=50e3),), seed=9))
        aged = build(TrajectorySpec(
            terms=(AgingDrift(years=4.0, drift_sigma=50e3),), seed=9))
        np.testing.assert_allclose(aged.oscillator_shift(32),
                                   2.0 * quiet.oscillator_shift(32))

    def test_aging_is_absent_without_term(self):
        trajectory = build(TrajectorySpec())
        assert trajectory.oscillator_shift(32) is None
        assert not trajectory.has_aging

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TemperatureRamp(0.0, 1.0, queries=0)
        with pytest.raises(ValueError):
            TemperatureCycle(amplitude=1.0, period=0.0)
        with pytest.raises(ValueError):
            VoltageNoise(sigma=-0.1)
        with pytest.raises(ValueError):
            AgingDrift(years=-1.0)
        with pytest.raises(ValueError):
            build(TrajectorySpec()).sample(np.array([-1]))


class TestSeedingDiscipline:
    SPEC = TrajectorySpec(terms=(VoltageNoise(sigma=0.03),
                                 AgingDrift(years=3.0)), seed=42)

    def test_same_device_same_draws(self):
        first, second = build(self.SPEC, 5), build(self.SPEC, 5)
        indices = np.arange(64)
        np.testing.assert_array_equal(
            first.sample(indices).voltages,
            second.sample(indices).voltages)
        np.testing.assert_array_equal(first.oscillator_shift(16),
                                      second.oscillator_shift(16))

    def test_devices_are_independent(self):
        a, b = build(self.SPEC, 0), build(self.SPEC, 1)
        assert not np.array_equal(a.sample(np.arange(32)).voltages,
                                  b.sample(np.arange(32)).voltages)

    def test_value_at_index_independent_of_request_order(self):
        eager, lazy = build(self.SPEC, 2), build(self.SPEC, 2)
        whole = eager.sample(np.arange(100)).voltages
        # ask for a late slice first, then an early one
        late = lazy.sample(np.arange(60, 100)).voltages
        early = lazy.sample(np.arange(0, 60)).voltages
        np.testing.assert_array_equal(whole[60:], late)
        np.testing.assert_array_equal(whole[:60], early)

    def test_repeated_indices_resolve_identically(self):
        trajectory = build(self.SPEC, 3)
        once = trajectory.sample(np.array([7, 7, 11, 7])).voltages
        assert once[0] == once[1] == once[3]
        again = trajectory.sample(np.array([7])).voltages
        assert again[0] == once[0]

    def test_pickled_copy_replays_draws(self):
        original = build(self.SPEC, 4)
        clone = pickle.loads(pickle.dumps(original))
        indices = np.arange(50)
        np.testing.assert_array_equal(
            original.sample(indices).voltages,
            clone.sample(indices).voltages)
        np.testing.assert_array_equal(original.oscillator_shift(8),
                                      clone.oscillator_shift(8))

    def test_aging_size_mismatch_rejected(self):
        trajectory = build(self.SPEC, 6)
        trajectory.oscillator_shift(16)
        with pytest.raises(ValueError):
            trajectory.oscillator_shift(32)


class TestSpecSurface:
    def test_describe_mentions_terms(self):
        spec = TrajectorySpec(temperature=50.0,
                              terms=(TemperatureRamp(0, 1, 2),
                                     AgingDrift(years=1.0)))
        text = spec.describe()
        assert "T=50" in text
        assert "TemperatureRamp" in text
        assert "AgingDrift" in text
        assert TrajectorySpec().describe() == "constant-nominal"

    def test_spec_is_hashable_and_picklable(self):
        spec = TrajectorySpec(terms=(TemperatureCycle(5.0, 10.0),),
                              seed=1)
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))

    def test_build_returns_trajectory(self):
        assert isinstance(build(TrajectorySpec()),
                          EnvironmentTrajectory)
