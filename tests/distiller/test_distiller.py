"""Tests for the regression-based entropy distiller (paper §V-A)."""

import numpy as np
import pytest

from repro.distiller import (
    DistillerHelper,
    EntropyDistiller,
    Polynomial2D,
    quadratic_ridge_x,
    tilted_plane,
)
from repro.puf import ROArray, ROArrayParams


class TestHelper:
    def test_coefficient_count_validated(self):
        with pytest.raises(ValueError):
            DistillerHelper(2, np.zeros(5))

    def test_coefficients_read_only(self):
        helper = DistillerHelper(1, np.zeros(3))
        with pytest.raises(ValueError):
            helper.coefficients[0] = 1.0

    def test_with_added_superimposes(self):
        helper = DistillerHelper(2, np.zeros(6))
        ridge = quadratic_ridge_x(1.0, 0.0)
        added = helper.with_added(ridge)
        assert added.polynomial == ridge

    def test_with_added_raises_degree(self):
        helper = DistillerHelper(1, np.array([1.0, 0.0, 0.0]))
        added = helper.with_added(quadratic_ridge_x(1.0, 0.0))
        assert added.degree == 2
        assert added.polynomial(0.0, 0.0) == pytest.approx(1.0)


class TestEnrollment:
    def test_removes_synthetic_trend_exactly(self, rng):
        # Pure degree-2 trend, no randomness: residuals must vanish.
        params = ROArrayParams(rows=8, cols=16, sigma_process=0.0,
                               sigma_noise=0.0)
        trend = Polynomial2D(2, [0.0, 2e4, -1e4, 300.0, 150.0, -200.0])
        array = ROArray(params, rng=1, systematic=trend)
        distiller = EntropyDistiller(2)
        freqs = array.true_frequencies()
        _, residuals = distiller.enroll(array.x, array.y, freqs)
        np.testing.assert_allclose(residuals, 0.0, atol=1e-6)

    def test_preserves_random_variation(self, rng):
        params = ROArrayParams(rows=16, cols=32, sigma_process=4e5,
                               sigma_noise=0.0)
        array = ROArray(params, rng=2)
        distiller = EntropyDistiller(2)
        freqs = array.true_frequencies()
        _, residuals = distiller.enroll(array.x, array.y, freqs)
        # Residual std close to the process-variation std: the trend is
        # gone, the entropy source survives (paper Fig. 2).
        assert residuals.std() == pytest.approx(
            array.process_variation.std(), rel=0.1)

    def test_variance_explained_ordering(self):
        params = ROArrayParams(rows=16, cols=32,
                               systematic_amplitude=3e6)
        array = ROArray(params, rng=3)
        freqs = array.true_frequencies()
        distiller = EntropyDistiller(2)
        explained = distiller.variance_explained(array.x, array.y, freqs)
        assert explained > 0.5
        flat_params = ROArrayParams(rows=16, cols=32,
                                    systematic_amplitude=0.0)
        flat = ROArray(flat_params, rng=3)
        flat_explained = distiller.variance_explained(
            flat.x, flat.y, flat.true_frequencies())
        assert flat_explained < 0.2
        assert explained > flat_explained

    def test_higher_degree_explains_no_less(self):
        array = ROArray(ROArrayParams(rows=16, cols=32), rng=4)
        freqs = array.true_frequencies()
        explained = [EntropyDistiller(p).variance_explained(
            array.x, array.y, freqs) for p in (1, 2, 3)]
        assert explained[0] <= explained[1] + 1e-9
        assert explained[1] <= explained[2] + 1e-9


class TestReconstruction:
    def test_residuals_follow_manipulated_coefficients(self):
        array = ROArray(ROArrayParams(rows=4, cols=10), rng=5)
        distiller = EntropyDistiller(2)
        freqs = array.true_frequencies()
        helper, residuals = distiller.enroll(array.x, array.y, freqs)
        ridge = quadratic_ridge_x(1e9, 4.5)
        manipulated = helper.with_added(ridge)
        new_residuals = distiller.residuals(array.x, array.y, freqs,
                                            manipulated)
        np.testing.assert_allclose(
            new_residuals - residuals,
            -ridge(array.x, array.y), rtol=1e-9)

    def test_injection_overshadows_randomness(self):
        # The §VI-C premise: a steep injected gradient fully determines
        # pairwise comparisons across columns.
        array = ROArray(ROArrayParams(rows=4, cols=10), rng=6)
        distiller = EntropyDistiller(2)
        freqs = array.true_frequencies()
        helper, _ = distiller.enroll(array.x, array.y, freqs)
        steep = helper.with_added(tilted_plane(1e9, 0.0))
        residuals = distiller.residuals(array.x, array.y, freqs, steep)
        by_column = residuals.reshape(4, 10)
        # higher column index -> much smaller residual, every row
        assert np.all(np.diff(by_column, axis=1) < 0)
