"""Row-dedup primitives: edge cases and strategy-crossover equality.

``_dedup`` switches between hashed ``tobytes`` grouping (small blocks)
and the structured-sort ``np.unique(axis=0)`` path at
``SMALL_BLOCK = 128`` rows.  Consumers scatter per-pattern results
back by index, so the two strategies must agree on group *contents*
(patterns and index partitions) even though their iteration order
differs — pinned here across the crossover on randomized inputs,
together with the degenerate shapes (empty input, single row).
"""

import numpy as np
import pytest

import repro._dedup as dedup
from repro._dedup import SMALL_BLOCK, iter_unique_rows, unique_rows


def groups_as_dict(matrix, rows=None):
    """Map pattern bytes -> sorted original indices for one iteration."""
    out = {}
    for pattern, indices in iter_unique_rows(matrix, rows):
        key = pattern.tobytes()
        assert key not in out, "pattern yielded twice"
        out[key] = sorted(int(i) for i in indices)
    return out


class TestEdgeCases:
    def test_empty_matrix(self):
        matrix = np.zeros((0, 5), dtype=np.uint8)
        assert list(iter_unique_rows(matrix)) == []
        distinct, inverse = unique_rows(matrix)
        assert distinct.shape == (0, 5)
        assert inverse.shape == (0,)

    def test_empty_row_subset(self):
        matrix = np.ones((4, 3), dtype=np.uint8)
        assert list(iter_unique_rows(
            matrix, np.array([], dtype=np.intp))) == []

    def test_single_row(self):
        matrix = np.array([[1, 0, 1]], dtype=np.uint8)
        ((pattern, indices),) = list(iter_unique_rows(matrix))
        np.testing.assert_array_equal(pattern, matrix[0])
        np.testing.assert_array_equal(indices, [0])
        distinct, inverse = unique_rows(matrix)
        np.testing.assert_array_equal(distinct, matrix)
        np.testing.assert_array_equal(inverse, [0])

    def test_row_subset_indices_refer_to_original_matrix(self):
        matrix = np.array([[1, 1], [0, 0], [1, 1], [0, 1]],
                          dtype=np.uint8)
        rows = np.array([0, 2, 3])
        observed = groups_as_dict(matrix, rows)
        assert observed[matrix[0].tobytes()] == [0, 2]
        assert observed[matrix[3].tobytes()] == [3]
        assert matrix[1].tobytes() not in observed


class TestStrategyCrossover:
    """Hashed vs structured-sort grouping around the 128-row switch."""

    @pytest.mark.parametrize("count", [SMALL_BLOCK - 1, SMALL_BLOCK,
                                       SMALL_BLOCK + 1,
                                       2 * SMALL_BLOCK])
    def test_unique_rows_strategies_bitwise_equal(self, count,
                                                  monkeypatch):
        rng = np.random.default_rng(1000 + count)
        # Few distinct patterns, as in real completion workloads.
        patterns = rng.integers(0, 2, size=(5, 16)).astype(np.uint8)
        matrix = patterns[rng.integers(0, 5, size=count)]

        monkeypatch.setattr(dedup, "SMALL_BLOCK", matrix.shape[0])
        hashed_distinct, hashed_inverse = unique_rows(matrix)
        monkeypatch.setattr(dedup, "SMALL_BLOCK", 0)
        sorted_distinct, sorted_inverse = unique_rows(matrix)

        # Orders differ (first-occurrence vs lexicographic); the
        # scatter-back reconstruction must be bitwise-identical.
        np.testing.assert_array_equal(
            hashed_distinct[hashed_inverse],
            sorted_distinct[sorted_inverse])
        np.testing.assert_array_equal(hashed_distinct[hashed_inverse],
                                      matrix)
        assert sorted(d.tobytes() for d in hashed_distinct) \
            == sorted(d.tobytes() for d in sorted_distinct)

    @pytest.mark.parametrize("count", [SMALL_BLOCK, SMALL_BLOCK + 1])
    def test_iter_unique_rows_strategies_group_identically(
            self, count, monkeypatch):
        rng = np.random.default_rng(2000 + count)
        patterns = rng.integers(0, 2, size=(7, 9)).astype(np.uint8)
        matrix = patterns[rng.integers(0, 7, size=count)]

        monkeypatch.setattr(dedup, "SMALL_BLOCK", matrix.shape[0])
        hashed = groups_as_dict(matrix)
        monkeypatch.setattr(dedup, "SMALL_BLOCK", 0)
        structured = groups_as_dict(matrix)
        assert hashed == structured
        # Groups partition the row indices exactly once.
        assert sorted(i for idx in hashed.values() for i in idx) \
            == list(range(count))
