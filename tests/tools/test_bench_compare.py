"""Tests for ``tools/bench_compare.py`` (pairwise + trajectory)."""

import importlib.util
import json
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent.parent / "tools"


def load_tool(name):
    """Import a tools/ script as a module (the dir is not a package)."""
    spec = importlib.util.spec_from_file_location(
        name, TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


bench_compare = load_tool("bench_compare")


def write_report(path, means):
    payload = {"benchmarks": [
        {"fullname": name, "stats": {"mean": mean}}
        for name, mean in means.items()]}
    path.write_text(json.dumps(payload))
    return path


def write_summary(path, label, entries):
    """entries: list of (sequence, commit, benchmarks, security)."""
    history = [{"sequence": seq, "commit": commit,
                "date": "2026-08-07", "config_hash": "h",
                "profile": "quick", "benchmarks": benchmarks,
                "security": security}
               for seq, commit, benchmarks, security in entries]
    path.write_text(json.dumps({"schema_version": 1, "label": label,
                                "history": history}))
    return path


class TestLoadReport:
    def test_loads_means(self, tmp_path):
        path = write_report(tmp_path / "r.json", {"a": 0.5, "b": 1.0})
        means, dropped = bench_compare.load_report(path)
        assert means == {"a": 0.5, "b": 1.0}
        assert dropped == 0

    def test_counts_missing_and_zero_means(self, tmp_path, capsys):
        payload = {"benchmarks": [
            {"fullname": "ok", "stats": {"mean": 0.5}},
            {"fullname": "zero", "stats": {"mean": 0}},
            {"fullname": "missing", "stats": {}},
            {"fullname": "bogus", "stats": {"mean": "fast"}},
            {"stats": {"mean": 0.5}},
        ]}
        path = tmp_path / "r.json"
        path.write_text(json.dumps(payload))
        means, dropped = bench_compare.load_report(path)
        assert means == {"ok": 0.5}
        assert dropped == 4
        err = capsys.readouterr().err
        assert "skipped 4 benchmark(s)" in err
        assert "'zero'" in err

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            bench_compare.load_report(path)

    def test_rejects_non_object(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="not a benchmark"):
            bench_compare.load_report(path)

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            bench_compare.load_report(tmp_path / "absent.json")


class TestCompare:
    def test_flags_regression(self):
        lines, regressions = bench_compare.compare(
            {"a": 1.0}, {"a": 1.5}, threshold=0.20)
        assert len(regressions) == 1
        name, old, new, change = regressions[0]
        assert (name, old, new) == ("a", 1.0, 1.5)
        assert change == pytest.approx(50.0)

    def test_new_and_vanished(self):
        lines, regressions = bench_compare.compare(
            {"gone": 1.0}, {"fresh": 1.0}, threshold=0.20)
        assert regressions == []
        assert any("NEW" in line for line in lines)
        assert any("VANISHED" in line for line in lines)


class TestMainPairwise:
    def test_ok_exit_zero(self, tmp_path, capsys):
        base = write_report(tmp_path / "base.json", {"a": 1.0})
        cur = write_report(tmp_path / "cur.json", {"a": 1.05})
        assert bench_compare.main([str(base), str(cur)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_warn_only_by_default(self, tmp_path):
        base = write_report(tmp_path / "base.json", {"a": 1.0})
        cur = write_report(tmp_path / "cur.json", {"a": 2.0})
        assert bench_compare.main([str(base), str(cur)]) == 0

    def test_fail_on_regression(self, tmp_path):
        base = write_report(tmp_path / "base.json", {"a": 1.0})
        cur = write_report(tmp_path / "cur.json", {"a": 2.0})
        assert bench_compare.main(
            [str(base), str(cur), "--fail-on-regression"]) == 1

    def test_fail_over_tripwire_and_annotation(self, tmp_path,
                                               capsys):
        base = write_report(tmp_path / "base.json", {"a": 1.0})
        cur = write_report(tmp_path / "cur.json", {"a": 2.0})
        assert bench_compare.main(
            [str(base), str(cur), "--fail-over", "50"]) == 1
        assert "::warning" in capsys.readouterr().out

    def test_fail_over_under_tripwire(self, tmp_path):
        base = write_report(tmp_path / "base.json", {"a": 1.0})
        cur = write_report(tmp_path / "cur.json", {"a": 1.3})
        assert bench_compare.main(
            [str(base), str(cur), "--fail-over", "50"]) == 0

    def test_malformed_report_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        good = write_report(tmp_path / "good.json", {"a": 1.0})
        assert bench_compare.main([str(bad), str(good)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_requires_two_reports(self, tmp_path):
        solo = write_report(tmp_path / "solo.json", {"a": 1.0})
        with pytest.raises(SystemExit):
            bench_compare.main([str(solo)])


class TestMainTrajectory:
    def test_renders_history(self, tmp_path, capsys):
        path = write_summary(
            tmp_path / "BENCH_x.json", "x",
            [(1, "aaa", {"cell": {"mean": 0.10}},
              {"cell": {"recovery_rate": 1.0, "queries_mean": 10.0,
                        "outcome_fingerprint": "f1"}}),
             (2, "bbb", {"cell": {"mean": 0.11}},
              {"cell": {"recovery_rate": 1.0, "queries_mean": 10.0,
                        "outcome_fingerprint": "f1"}})])
        assert bench_compare.main(["--trajectory", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0.100s -> 0.110s" in out
        assert "no drift" in out

    def test_perf_drift_annotates(self, tmp_path, capsys):
        path = write_summary(
            tmp_path / "BENCH_x.json", "x",
            [(1, "aaa", {"cell": {"mean": 0.10}}, {}),
             (2, "bbb", {"cell": {"mean": 0.30}}, {})])
        assert bench_compare.main(["--trajectory", str(path)]) == 0
        out = capsys.readouterr().out
        assert "::warning title=Benchmark drift::" in out

    def test_perf_drift_fail_over(self, tmp_path):
        path = write_summary(
            tmp_path / "BENCH_x.json", "x",
            [(1, "aaa", {"cell": {"mean": 0.10}}, {}),
             (2, "bbb", {"cell": {"mean": 0.30}}, {})])
        assert bench_compare.main(
            ["--trajectory", str(path), "--fail-over", "50"]) == 1

    def test_security_drift_annotates(self, tmp_path, capsys):
        path = write_summary(
            tmp_path / "BENCH_x.json", "x",
            [(1, "aaa", {},
              {"cell": {"recovery_rate": 1.0, "queries_mean": 10.0,
                        "outcome_fingerprint": "f1"}}),
             (2, "bbb", {},
              {"cell": {"recovery_rate": 0.5, "queries_mean": 10.0,
                        "outcome_fingerprint": "f2"}})])
        assert bench_compare.main(["--trajectory", str(path)]) == 0
        out = capsys.readouterr().out
        assert "::warning title=Security drift::" in out

    def test_malformed_summary_exit_two(self, tmp_path, capsys):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{broken")
        assert bench_compare.main(["--trajectory", str(path)]) == 2
        assert "malformed summary" in capsys.readouterr().err

    def test_missing_file_exit_two(self, tmp_path):
        assert bench_compare.main(
            ["--trajectory", str(tmp_path / "absent.json")]) == 2

    def test_no_files_found_is_benign(self, tmp_path, monkeypatch,
                                      capsys):
        monkeypatch.chdir(tmp_path)
        assert bench_compare.main(["--trajectory"]) == 0
        assert "nothing to render" in capsys.readouterr().out
