"""Tests for folding bench-report artifacts into trajectory mode."""

import importlib.util
import json
from pathlib import Path

TOOLS = Path(__file__).resolve().parent.parent.parent / "tools"


def load_tool(name):
    """Import a tools/ script as a module (the dir is not a package)."""
    spec = importlib.util.spec_from_file_location(
        name, TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


bench_compare = load_tool("bench_compare")


def write_report(path, means):
    payload = {"benchmarks": [
        {"fullname": name, "stats": {"mean": mean}}
        for name, mean in means.items()]}
    path.write_text(json.dumps(payload))
    return path


def write_summary(path, label, entries):
    history = [{"sequence": seq, "commit": commit,
                "date": "2026-08-07", "config_hash": "h",
                "profile": "quick", "benchmarks": benchmarks,
                "security": security}
               for seq, commit, benchmarks, security in entries]
    path.write_text(json.dumps({"schema_version": 1, "label": label,
                                "history": history}))
    return path


class TestFoldBenchReports:
    def test_reports_become_ordered_history(self, tmp_path):
        first = write_report(tmp_path / "baseline.json",
                             {"bench_a": 1.0, "bench_b": 0.2})
        second = write_report(tmp_path / "current.json",
                              {"bench_a": 1.1, "bench_b": 0.2})
        payload = bench_compare.fold_bench_reports([first, second])
        assert payload["label"] == "bench-reports"
        assert [entry["sequence"] for entry in payload["history"]] \
            == [1, 2]
        assert [entry["commit"] for entry in payload["history"]] \
            == ["baseline", "current"]
        assert payload["history"][1]["benchmarks"]["bench_a"] \
            == {"mean": 1.1}
        assert payload["history"][0]["security"] == {}


class TestTrajectoryWithBenchReports:
    def test_folded_reports_render_alongside_summaries(
            self, tmp_path, capsys):
        summary = write_summary(
            tmp_path / "BENCH_x.json", "x",
            [(1, "aaa", {"cell": {"mean": 0.5}}, {}),
             (2, "bbb", {"cell": {"mean": 0.55}}, {})])
        baseline = write_report(tmp_path / "baseline.json",
                                {"bench_a": 1.0})
        current = write_report(tmp_path / "current.json",
                               {"bench_a": 1.05})
        code = bench_compare.run_trajectory(
            [summary], threshold=0.20,
            bench_reports=[baseline, current])
        out = capsys.readouterr().out
        assert code == 0
        assert "perf cell: 0.500s -> 0.550s" in out
        assert "perf bench_a: 1.000s -> 1.050s" in out
        assert "bench-reports" in out

    def test_drift_across_folded_reports_annotates(self, tmp_path,
                                                   capsys):
        baseline = write_report(tmp_path / "baseline.json",
                                {"bench_a": 1.0})
        current = write_report(tmp_path / "current.json",
                               {"bench_a": 2.0})
        code = bench_compare.run_trajectory(
            [], threshold=0.20, bench_reports=[baseline, current])
        out = capsys.readouterr().out
        assert code == 0  # warn-only without --fail-over
        assert "::warning" in out
        assert "bench_a" in out

    def test_fail_over_trips_on_folded_drift(self, tmp_path, capsys):
        baseline = write_report(tmp_path / "baseline.json",
                                {"bench_a": 1.0})
        current = write_report(tmp_path / "current.json",
                               {"bench_a": 3.0})
        code = bench_compare.run_trajectory(
            [], threshold=0.20, fail_over=50.0,
            bench_reports=[baseline, current])
        assert code == 1
        assert "::warning" in capsys.readouterr().out

    def test_missing_report_is_a_loud_failure(self, tmp_path,
                                              capsys):
        code = bench_compare.run_trajectory(
            [], threshold=0.20,
            bench_reports=[tmp_path / "nope.json"])
        assert code == 2
        assert "no such file" in capsys.readouterr().err

    def test_malformed_report_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = bench_compare.run_trajectory(
            [], threshold=0.20, bench_reports=[bad])
        assert code == 2
        assert "malformed" in capsys.readouterr().err

    def test_cli_rejects_bench_report_without_trajectory(
            self, tmp_path, capsys):
        report = write_report(tmp_path / "r.json", {"a": 1.0})
        try:
            bench_compare.main(["--bench-report", str(report),
                                str(report), str(report)])
        except SystemExit as stop:
            assert stop.code == 2
        else:  # pragma: no cover - parser must have exited
            raise AssertionError("expected parser error")
        assert "only meaningful" in capsys.readouterr().err

    def test_cli_end_to_end(self, tmp_path, capsys):
        baseline = write_report(tmp_path / "baseline.json",
                                {"bench_a": 1.0})
        current = write_report(tmp_path / "current.json",
                               {"bench_a": 1.02})
        code = bench_compare.main([
            "--trajectory",
            "--bench-report", str(baseline),
            "--bench-report", str(current)])
        assert code == 0
        assert "bench_a" in capsys.readouterr().out
