"""Tests for the ``tools/check_docs.py`` documentation gates."""

import importlib.util
from pathlib import Path

TOOLS = Path(__file__).resolve().parent.parent.parent / "tools"


def load_tool(name):
    """Import a tools/ script as a module (the dir is not a package)."""
    spec = importlib.util.spec_from_file_location(
        name, TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docs = load_tool("check_docs")


class TestCheckLinks:
    def test_resolving_links_pass(self, tmp_path):
        (tmp_path / "other.md").write_text("# other\n")
        (tmp_path / "README.md").write_text(
            "[other](other.md) and [web](https://example.com) "
            "and [anchor](#section)\n")
        assert check_docs.check_links(tmp_path) == []

    def test_broken_link_reported_with_location(self, tmp_path):
        (tmp_path / "README.md").write_text("intro\n[gone](gone.md)\n")
        errors = check_docs.check_links(tmp_path)
        assert len(errors) == 1
        assert "README.md:2" in errors[0]
        assert "gone.md" in errors[0]

    def test_anchor_suffix_stripped(self, tmp_path):
        (tmp_path / "doc.md").write_text("# doc\n")
        (tmp_path / "README.md").write_text("[d](doc.md#section)\n")
        assert check_docs.check_links(tmp_path) == []

    def test_skips_scraped_reference_files(self, tmp_path):
        (tmp_path / "SNIPPETS.md").write_text("[x](missing.md)\n")
        assert check_docs.check_links(tmp_path) == []

    def test_link_escaping_the_root_is_ignored(self, tmp_path):
        # Forge-relative URLs (e.g. a CI badge path) resolve outside
        # the tree and are not repo file references.
        (tmp_path / "README.md").write_text(
            "[badge](../../actions/workflows/ci.yml)\n")
        assert check_docs.check_links(tmp_path) == []


class TestCheckExportDocstrings:
    def make_pkg(self, tmp_path, init_body):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text(init_body)
        return pkg

    def test_documented_exports_pass(self, tmp_path):
        pkg = self.make_pkg(tmp_path, '''"""Package."""

__all__ = ["helper"]


def helper():
    """Do the thing."""
''')
        assert check_docs.check_export_docstrings(tmp_path, pkg) == []

    def test_undocumented_export_reported(self, tmp_path):
        pkg = self.make_pkg(tmp_path, '''"""Package."""

__all__ = ["helper"]


def helper():
    return 1
''')
        errors = check_docs.check_export_docstrings(tmp_path, pkg)
        assert len(errors) == 1
        assert "helper" in errors[0]

    def test_missing_module_docstring_reported(self, tmp_path):
        pkg = self.make_pkg(tmp_path, "__all__ = []\n")
        errors = check_docs.check_export_docstrings(tmp_path, pkg)
        assert any("missing module docstring" in e for e in errors)

    def test_reexport_resolved_in_home_module(self, tmp_path):
        pkg = self.make_pkg(tmp_path, '''"""Package."""

from pkg.impl import helper

__all__ = ["helper"]
''')
        (pkg / "impl.py").write_text('''"""Implementation."""


def helper():
    """Documented at the definition site."""
''')
        assert check_docs.check_export_docstrings(tmp_path, pkg) == []

    def test_private_module_needs_no_docstring(self, tmp_path):
        pkg = self.make_pkg(tmp_path, '"""Package."""\n')
        (pkg / "_private.py").write_text("X = 1\n")
        assert check_docs.check_export_docstrings(tmp_path, pkg) == []


class TestAgainstThisRepo:
    def test_repo_gates_pass(self):
        # The repo itself must satisfy its own gates.
        assert check_docs.check_links() == []
        assert check_docs.check_export_docstrings() == []
