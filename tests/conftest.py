"""Shared fixtures: deterministic devices of the paper's geometries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.puf import ROArray, ROArrayParams


@pytest.fixture
def rng():
    """Deterministic generator for test-local randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_params():
    """The 4 x 10 array of paper Fig. 6."""
    return ROArrayParams(rows=4, cols=10)


@pytest.fixture
def small_array(small_params):
    return ROArray(small_params, rng=33)


@pytest.fixture
def medium_params():
    """An 8 x 16 array: large enough for meaningful key lengths."""
    return ROArrayParams(rows=8, cols=16)


@pytest.fixture
def medium_array(medium_params):
    return ROArray(medium_params, rng=21)


@pytest.fixture
def thermal_params():
    """Wide temperature-slope spread so crossover pairs are plentiful."""
    return ROArrayParams(rows=8, cols=16, temp_slope_sigma=8e3)


@pytest.fixture
def thermal_array(thermal_params):
    return ROArray(thermal_params, rng=7)
