"""Tests for entropy packing (paper §V-E)."""

from itertools import permutations
from math import log2

import numpy as np
import pytest

from repro.grouping import (
    compact_encode,
    kendall_encode,
    pack_group,
    pack_key,
    packed_length,
    packing_loss_bits,
    split_blocks,
    unpack_group,
)


class TestPackGroup:
    @pytest.mark.parametrize("size", [2, 3, 4])
    def test_pack_equals_compact_of_decoded_order(self, size):
        for order in permutations(range(size)):
            packed = pack_group(kendall_encode(order), size)
            np.testing.assert_array_equal(packed, compact_encode(order))

    def test_unpack_inverts_pack(self):
        for order in permutations(range(4)):
            kendall = kendall_encode(order)
            np.testing.assert_array_equal(
                unpack_group(pack_group(kendall, 4), 4), kendall)

    def test_invalid_kendall_word_rejected(self):
        with pytest.raises(ValueError):
            pack_group(np.array([0, 1, 0], dtype=np.uint8), 3)


class TestSplitBlocks:
    def test_chunks_follow_group_sizes(self):
        sizes = [2, 3, 4]
        total = 1 + 3 + 6
        bits = np.arange(total) % 2
        chunks = split_blocks(bits.astype(np.uint8), sizes)
        assert [c.shape[0] for c in chunks] == [1, 3, 6]

    def test_wrong_total_length_rejected(self):
        with pytest.raises(ValueError):
            split_blocks(np.zeros(5, dtype=np.uint8), [2, 3])


class TestPackKey:
    def test_multi_group_concatenation(self):
        orders = [(1, 0), (2, 0, 1)]
        kendall = np.concatenate([kendall_encode(o) for o in orders])
        key = pack_key(kendall, [2, 3])
        expected = np.concatenate([compact_encode(o) for o in orders])
        np.testing.assert_array_equal(key, expected)

    def test_packed_length_accounting(self):
        assert packed_length([2, 3, 4]) == 1 + 3 + 5

    def test_empty_input(self):
        assert pack_key(np.zeros(0, dtype=np.uint8), []).shape == (0,)


class TestPackingLoss:
    def test_size_two_is_lossless(self):
        assert packing_loss_bits([2, 2, 2]) == pytest.approx(0.0)

    def test_larger_groups_lose_fraction(self):
        # ceil(log2 g!) - log2 g! > 0 for g = 3, 4 (paper §V-E: the fix
        # is partial since g! is not a power of two).
        loss3 = packing_loss_bits([3])
        loss4 = packing_loss_bits([4])
        assert loss3 == pytest.approx(3 - log2(6))
        assert loss4 == pytest.approx(5 - log2(24))
        assert loss3 > 0 and loss4 > 0

    def test_losses_accumulate(self):
        assert packing_loss_bits([3, 4]) == pytest.approx(
            packing_loss_bits([3]) + packing_loss_bits([4]))
