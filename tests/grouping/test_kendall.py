"""Tests for Kendall/compact coding (paper §V-C, Table I)."""

from itertools import permutations

import numpy as np
import pytest

from repro.grouping import (
    adjacent_swap_distance,
    compact_bit_count,
    compact_decode,
    compact_encode,
    compact_rank,
    is_valid_kendall,
    kendall_bit_count,
    kendall_decode,
    kendall_encode,
    order_from_frequencies,
    order_from_rank,
    table1_rows,
)

#: Paper Table I, transcribed verbatim: order -> (compact, kendall).
PAPER_TABLE_I = {
    "ABCD": ("00000", "000000"), "ABDC": ("00001", "000001"),
    "ACBD": ("00010", "000100"), "ACDB": ("00011", "000110"),
    "ADBC": ("00100", "000011"), "ADCB": ("00101", "000111"),
    "BACD": ("00110", "100000"), "BADC": ("00111", "100001"),
    "BCAD": ("01000", "110000"), "BCDA": ("01001", "111000"),
    "BDAC": ("01010", "101001"), "BDCA": ("01011", "111001"),
    "CABD": ("01100", "010100"), "CADB": ("01101", "010110"),
    "CBAD": ("01110", "110100"), "CBDA": ("01111", "111100"),
    "CDAB": ("10000", "011110"), "CDBA": ("10001", "111110"),
    "DABC": ("10010", "001011"), "DACB": ("10011", "001111"),
    "DBAC": ("10100", "101011"), "DBCA": ("10101", "111011"),
    "DCAB": ("10110", "011111"), "DCBA": ("10111", "111111"),
}


class TestTableI:
    def test_exact_reproduction_of_paper_table(self):
        rows = {name: (compact, kendall)
                for name, compact, kendall in table1_rows()}
        assert rows == PAPER_TABLE_I

    def test_row_count(self):
        assert len(table1_rows()) == 24

    def test_insufficient_labels_rejected(self):
        with pytest.raises(ValueError):
            table1_rows(size=5, labels="ABCD")


class TestOrderFromFrequencies:
    def test_descending_order(self):
        order = order_from_frequencies([3.0, 9.0, 1.0, 5.0])
        assert order == (1, 3, 0, 2)

    def test_tie_prefers_lower_label(self):
        assert order_from_frequencies([5.0, 5.0]) == (0, 1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            order_from_frequencies([])


class TestKendallCoding:
    @pytest.mark.parametrize("size", [2, 3, 4, 5, 6])
    def test_roundtrip_all_orders(self, size):
        for order in permutations(range(size)):
            bits = kendall_encode(order)
            assert bits.shape == (kendall_bit_count(size),)
            assert kendall_decode(bits, size) == order

    def test_identity_order_is_zero(self):
        assert kendall_encode(range(5)).sum() == 0

    def test_reversed_order_is_all_ones(self):
        assert kendall_encode([4, 3, 2, 1, 0]).all()

    def test_adjacent_swap_flips_exactly_one_bit(self):
        # The property motivating the coding: "errors mostly occur in
        # form of a flip ... there is only one error per flip".
        for order in permutations(range(4)):
            for position in range(3):
                swapped = list(order)
                swapped[position], swapped[position + 1] = \
                    swapped[position + 1], swapped[position]
                assert adjacent_swap_distance(order, swapped) == 1

    def test_invalid_codewords_detected(self):
        # A 3-cycle tournament: a<b, b<c, c<a is not an order.
        # pairs (0,1), (0,2), (1,2): bits 0, 1, 0 mean 0<1, 2<0, 1<2.
        assert not is_valid_kendall(np.array([0, 1, 0], dtype=np.uint8),
                                    3)

    def test_valid_fraction_matches_factorial(self):
        # Exactly g! of the 2^(g(g-1)/2) words are valid (paper §V-E:
        # "many bit vectors are never used").
        size = 4
        valid = 0
        for word in range(1 << kendall_bit_count(size)):
            bits = np.array([(word >> i) & 1
                             for i in range(kendall_bit_count(size))],
                            dtype=np.uint8)
            valid += is_valid_kendall(bits, size)
        assert valid == 24

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError):
            kendall_encode([0, 0, 1])

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            kendall_decode(np.zeros(5, dtype=np.uint8), 4)


class TestCompactCoding:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5])
    def test_rank_roundtrip(self, size):
        from math import factorial

        for rank in range(factorial(size)):
            order = order_from_rank(rank, size)
            assert compact_rank(order) == rank

    def test_rank_is_lexicographic(self):
        orders = sorted(permutations(range(4)))
        for rank, order in enumerate(orders):
            assert compact_rank(order) == rank

    @pytest.mark.parametrize("size", [2, 3, 4, 5])
    def test_bits_roundtrip(self, size):
        for order in permutations(range(size)):
            bits = compact_encode(order)
            assert bits.shape == (compact_bit_count(size),)
            assert compact_decode(bits, size) == order

    def test_bit_counts(self):
        assert compact_bit_count(2) == 1
        assert compact_bit_count(3) == 3   # ceil(log2 6)
        assert compact_bit_count(4) == 5   # ceil(log2 24)
        assert compact_bit_count(5) == 7   # ceil(log2 120)

    def test_out_of_range_rank_rejected(self):
        with pytest.raises(ValueError):
            order_from_rank(24, 4)

    def test_msb_first_convention(self):
        # DCBA has rank 23 = 10111 (Table I last row).
        bits = compact_encode((3, 2, 1, 0))
        assert "".join(map(str, bits)) == "10111"
