"""Tests for the grouping algorithm (paper §V-B, Alg. 2)."""

import numpy as np
import pytest

from repro.grouping import (
    GroupingHelper,
    GroupingScheme,
    group_ros,
    grouping_entropy,
    verify_grouping,
)


class TestAlgorithm2:
    def test_partition_is_strict(self, rng):
        freqs = rng.normal(200e6, 1e6, 128)
        groups = group_ros(freqs, 100e3)
        flat = [ro for group in groups for ro in group]
        assert sorted(flat) == list(range(128))

    def test_all_pairs_property(self, rng):
        freqs = rng.normal(200e6, 1e6, 128)
        threshold = 100e3
        groups = group_ros(freqs, threshold)
        assert verify_grouping(freqs, groups, threshold)

    def test_members_in_descending_frequency_order(self, rng):
        freqs = rng.normal(200e6, 1e6, 64)
        for group in group_ros(freqs, 50e3):
            values = freqs[group]
            assert np.all(np.diff(values) < 0)

    def test_first_fit_greedy(self):
        # freqs 10, 9, 8 with threshold 1.5: 10 opens G1; 9 (gap 1)
        # cannot join G1, opens G2; 8 (gap 2 from 10) joins G1.
        freqs = np.array([10.0, 9.0, 8.0])
        groups = group_ros(freqs, 1.5)
        assert groups == [[0, 2], [1]]

    def test_zero_threshold_single_group(self, rng):
        freqs = rng.permutation(np.arange(32, dtype=float))
        groups = group_ros(freqs, 0.0)
        assert len(groups) == 1
        assert len(groups[0]) == 32

    def test_huge_threshold_all_singletons(self, rng):
        freqs = rng.normal(0.0, 1.0, 16)
        groups = group_ros(freqs, 1e9)
        assert all(len(g) == 1 for g in groups)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            group_ros(np.array([]), 1.0)
        with pytest.raises(ValueError):
            group_ros(np.array([1.0, 2.0]), -1.0)


class TestEntropy:
    def test_entropy_formula(self):
        # sum_j log2(|G_j|!)
        assert grouping_entropy([[0, 1], [2, 3, 4]]) == \
            pytest.approx(1.0 + np.log2(6))

    def test_few_large_groups_beat_many_small(self):
        large = [[0, 1, 2, 3, 4, 5, 6, 7]]
        small = [[0, 1], [2, 3], [4, 5], [6, 7]]
        assert grouping_entropy(large) > grouping_entropy(small)

    def test_singletons_carry_no_entropy(self):
        assert grouping_entropy([[0], [1], [2]]) == pytest.approx(0.0)


class TestVerify:
    def test_detects_threshold_violation(self):
        freqs = np.array([10.0, 9.9, 5.0])
        assert not verify_grouping(freqs, [[0, 1], [2]], 1.0)

    def test_detects_duplicate_member(self):
        freqs = np.array([10.0, 5.0, 0.0])
        assert not verify_grouping(freqs, [[0, 1], [1, 2]], 1.0)

    def test_detects_missing_member(self):
        freqs = np.array([10.0, 5.0, 0.0])
        assert not verify_grouping(freqs, [[0, 1]], 1.0)


class TestScheme:
    def test_sorted_storage_hides_frequency_order(self, rng):
        freqs = rng.normal(200e6, 1e6, 64)
        scheme = GroupingScheme(50e3, storage_order="sorted")
        helper = scheme.enroll(freqs)
        for group in helper.groups:
            assert list(group) == sorted(group)

    def test_construction_storage_leaks_order(self, rng):
        # Paper §VII-C concern: construction order IS the ranking.
        freqs = rng.normal(200e6, 1e6, 64)
        scheme = GroupingScheme(50e3, storage_order="construction")
        helper = scheme.enroll(freqs)
        for group in helper.groups:
            values = freqs[list(group)]
            assert np.all(np.diff(values) < 0)

    def test_min_group_size_filters(self, rng):
        freqs = rng.normal(0.0, 1.0, 32)
        scheme = GroupingScheme(0.5, min_group_size=3)
        helper = scheme.enroll(freqs)
        assert all(size >= 3 for size in helper.sizes)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GroupingScheme(1.0, storage_order="shuffled")
        with pytest.raises(ValueError):
            GroupingScheme(1.0, min_group_size=0)


class TestHelper:
    def test_with_groups_replaces_partition(self):
        helper = GroupingHelper(((0, 1), (2, 3)), threshold=1.0)
        new = helper.with_groups([(0, 2), (1, 3)])
        assert new.groups == ((0, 2), (1, 3))
        assert helper.groups == ((0, 1), (2, 3))

    def test_sizes(self):
        helper = GroupingHelper(((0, 1, 2), (3, 4)), threshold=1.0)
        assert helper.sizes == (3, 2)
