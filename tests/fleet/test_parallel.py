"""Parallel fleet execution: worker-count invariance and pool plumbing.

The engine's contract is that ``workers=N`` is purely an execution
knob: every sweep result — failure rates, reliability curves, attack
outcomes, enrollment — must be bitwise-identical for every worker
count and chunking, because all per-device randomness is derived in
the parent before dispatch.  These tests pin that contract (the CI
fleet-parallel smoke job runs this module on its own).
"""

import hashlib
import pickle

import numpy as np
import pytest

from repro.core import BatchOracle, SequentialPairingAttack
from repro.core.injection import flip_orientations
from repro.fleet import Fleet, chunk_indices, resolve_workers
from repro.keygen import SequentialPairingKeyGen, TempAwareKeyGen
from repro.puf import ROArray, ROArrayParams

PARAMS = ROArrayParams(rows=8, cols=16, sigma_noise=300e3)
TEMP_PARAMS = ROArrayParams(rows=8, cols=16, temp_slope_sigma=8e3)


def sequential_factory():
    return SequentialPairingKeyGen(threshold=250e3)


def temp_aware_factory():
    return TempAwareKeyGen(t_min=-10, t_max=80, threshold=150e3,
                           sensor_seed=17)


def attack_factory(oracle, keygen, helper):
    return SequentialPairingAttack(oracle, keygen, helper)


def boundary_helpers(enrollment):
    helpers = []
    for keygen, helper, key in zip(enrollment.keygens,
                                   enrollment.helpers,
                                   enrollment.keys):
        t = keygen.sketch_for(key.size).code.t
        helpers.append(helper.with_pairing(
            flip_orientations(helper.pairing, range(1, 2 + t))))
    return helpers


def fresh_fleet(size=4, seed=4242):
    fleet = Fleet(PARAMS, size=size, seed=seed)
    enrollment = fleet.enroll(sequential_factory, seed=7)
    return fleet, enrollment


def digest(array):
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()
                          ).hexdigest()


class TestWorkerCountInvariance:
    def sweep(self, workers):
        fleet, enrollment = fresh_fleet()
        return fleet.failure_rates(
            enrollment, trials=150, chunk=64,
            helpers=boundary_helpers(enrollment), workers=workers)

    def test_failure_rates_hash_equal_across_workers(self):
        reference = digest(self.sweep(1))
        for workers in (2, 4):
            assert digest(self.sweep(workers)) == reference

    def test_chunking_and_workers_orthogonal(self):
        results = []
        for chunk, workers in ((7, 1), (64, 2), (1000, 4), (33, 3)):
            fleet, enrollment = fresh_fleet()
            results.append(fleet.failure_rates(
                enrollment, trials=60, chunk=chunk,
                helpers=boundary_helpers(enrollment),
                workers=workers))
        for observed in results[1:]:
            np.testing.assert_array_equal(results[0], observed)

    def test_reliability_curve_across_workers(self):
        curves = []
        for workers in (1, 2):
            fleet, enrollment = fresh_fleet(size=3)
            curves.append(fleet.reliability_curve(
                enrollment, [25.0, 70.0], trials=40, workers=workers))
        np.testing.assert_array_equal(curves[0], curves[1])
        assert curves[0].shape == (2, 3)

    def test_attack_campaign_across_workers(self):
        outcomes = []
        for workers in (1, 2):
            fleet, enrollment = fresh_fleet(size=3, seed=21)
            outcomes.append(fleet.attack_success(
                enrollment, attack_factory, workers=workers))
        recovered_seq, queries_seq = outcomes[0]
        recovered_par, queries_par = outcomes[1]
        np.testing.assert_array_equal(recovered_seq, recovered_par)
        np.testing.assert_array_equal(queries_seq, queries_par)
        assert recovered_seq.all()

    def test_enrollment_across_workers(self):
        keys = []
        for workers in (1, 3):
            fleet = Fleet(PARAMS, size=5, seed=11)
            enrollment = fleet.enroll(sequential_factory, seed=2,
                                      workers=workers)
            keys.append(enrollment.key_matrix())
        np.testing.assert_array_equal(keys[0], keys[1])

    def test_temp_aware_sweep_across_workers(self):
        # The temp-aware keygen carries a sensor noise stream; the
        # copy-on-dispatch rule must keep it worker-count invariant
        # too.
        rates = []
        for workers in (1, 2):
            fleet = Fleet(TEMP_PARAMS, size=2, seed=3)
            enrollment = fleet.enroll(temp_aware_factory, seed=1,
                                      workers=workers)
            rates.append(fleet.failure_rates(
                enrollment, trials=40,
                op=None, workers=workers))
        np.testing.assert_array_equal(rates[0], rates[1])


class TestTransientStreams:
    @staticmethod
    def boundary_rewrite(enrollment):
        """Helpers whose outcome hinges on each query's sensor read.

        Rewrites entry 0's assistant to a wrong-bit candidate and
        injects ``t`` errors: at the interval boundary the sensed
        temperature decides whether the (t+1)-th error appears.
        """
        from repro.core.injection import break_inversions

        helpers = []
        for keygen, helper, key in zip(enrollment.keygens,
                                       enrollment.helpers,
                                       enrollment.keys):
            entries = helper.scheme.cooperation
            entry = entries[0]
            t = keygen.sketch_for(key.size).code.t
            n_good = len(helper.scheme.good_indices)
            coop_bits = {e.pair_index: key[n_good + i]
                         for i, e in enumerate(entries)}
            assist_bit = coop_bits[entry.assist_index]
            wrong = next(e.pair_index for e in entries[1:]
                         if coop_bits[e.pair_index] != assist_bit
                         and e.pair_index != entry.assist_index)
            scheme = helper.scheme.replace_entry(
                0, entry.with_assist(wrong))
            scheme = break_inversions(
                scheme, entry.t_low, t,
                exclude=[entry.pair_index, wrong,
                         entry.assist_index])
            helpers.append(helper.with_scheme(scheme))
        return helpers

    def test_successive_sweeps_draw_independent_sensor_noise(self):
        # Each sweep re-seeds the keygens' transient sensor streams
        # from fresh population-root substreams: repeated sweeps must
        # be independent Monte-Carlo replicates, not replays of the
        # enrollment-time sensor stream state.
        from repro.keygen import OperatingPoint

        fleet = Fleet(TEMP_PARAMS, size=2, seed=3)
        enrollment = fleet.enroll(temp_aware_factory, seed=1)
        helpers = self.boundary_rewrite(enrollment)
        op = OperatingPoint(
            temperature=enrollment.helpers[0].scheme.cooperation[0]
            .t_low)
        sweeps = [tuple(fleet.failure_rates(enrollment, trials=150,
                                            op=op, helpers=helpers,
                                            workers=1))
                  for _ in range(4)]
        assert len(set(sweeps)) > 1

    def test_sensor_decisive_sweep_worker_invariant(self):
        from repro.keygen import OperatingPoint

        results = []
        for workers in (1, 2):
            fleet = Fleet(TEMP_PARAMS, size=2, seed=3)
            enrollment = fleet.enroll(temp_aware_factory, seed=1)
            helpers = self.boundary_rewrite(enrollment)
            op = OperatingPoint(
                temperature=enrollment.helpers[0].scheme
                .cooperation[0].t_low)
            results.append(fleet.failure_rates(
                enrollment, trials=100, op=op, helpers=helpers,
                workers=workers))
        np.testing.assert_array_equal(results[0], results[1])

    def test_parent_keygen_sensor_streams_untouched(self):
        fleet = Fleet(TEMP_PARAMS, size=2, seed=3)
        enrollment = fleet.enroll(temp_aware_factory, seed=1)
        states = [keygen._sensor_rng.bit_generator.state
                  for keygen in enrollment.keygens]
        fleet.failure_rates(enrollment, trials=20, workers=1)
        fleet.failure_rates(enrollment, trials=20, workers=2)
        for keygen, state in zip(enrollment.keygens, states):
            assert keygen._sensor_rng.bit_generator.state == state


class TestSweepDeterminism:
    def test_back_to_back_sweeps_reproducible(self):
        # Successive sweeps consume fresh substreams; two fleets with
        # the same seed must replay the same sweep sequence whatever
        # worker counts each sweep used.
        first_fleet, first_enrollment = fresh_fleet(size=3, seed=5)
        second_fleet, second_enrollment = fresh_fleet(size=3, seed=5)
        first = [first_fleet.failure_rates(first_enrollment, 40,
                                           workers=1),
                 first_fleet.failure_rates(first_enrollment, 40,
                                           workers=2)]
        second = [second_fleet.failure_rates(second_enrollment, 40,
                                             workers=4),
                  second_fleet.failure_rates(second_enrollment, 40,
                                             workers=1)]
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])

    def test_sweeps_do_not_touch_device_streams(self):
        # A sweep draws from derived substreams only: the devices'
        # internal noise streams must be exactly where they started,
        # whatever the worker count.
        fleet, enrollment = fresh_fleet(size=2)
        before = [array.measurement_noise(2) for array in fleet]
        control_fleet, control_enrollment = fresh_fleet(size=2)
        control_fleet.failure_rates(control_enrollment, 30, workers=1)
        control_fleet.failure_rates(control_enrollment, 30, workers=2)
        after = [array.measurement_noise(2)
                 for array in control_fleet]
        for expected, observed in zip(before, after):
            np.testing.assert_array_equal(expected, observed)


class TestTwoPhasePickling:
    """EvalPlan/workload dataclasses must survive a process boundary.

    Fused campaign rounds run inside pool workers; like every fleet
    dispatch, anything they carry follows the copy-on-dispatch rule —
    pickling copies state, and the copy must finalize to the same
    outcomes the original would.
    """

    def build_plan(self):
        array = ROArray(PARAMS, rng=61)
        keygen = SequentialPairingKeyGen(threshold=250e3)
        helper, key = keygen.enroll(array, rng=3)
        t = keygen.sketch_for(key.size).code.t
        corrupted = helper.with_pairing(
            flip_orientations(helper.pairing, range(1, 2 + t)))
        oracle = BatchOracle(array, keygen)
        return oracle.plan_rows(corrupted, oracle.take_rows(50))

    def test_eval_plan_pickle_round_trip(self):
        plan = self.build_plan()
        assert plan.workload is not None and plan.pending
        clone = pickle.loads(pickle.dumps(plan))
        np.testing.assert_array_equal(clone.workload.words,
                                      plan.workload.words)
        assert clone.kernel_key == plan.kernel_key
        np.testing.assert_array_equal(clone.execute(), plan.execute())

    def test_workload_pickle_round_trip(self):
        workload = self.build_plan().workload
        clone = pickle.loads(pickle.dumps(workload))
        expected = workload.kernel(workload.words)
        observed = clone.kernel(clone.words)
        for want, got in zip(expected, observed):
            np.testing.assert_array_equal(want, got)

    def test_fused_attack_campaign_across_workers(self):
        # Fused rounds inside each worker chunk: results must stay
        # bitwise worker-count invariant.
        outcomes = []
        for workers in (1, 2):
            fleet, enrollment = fresh_fleet(size=4, seed=23)
            outcomes.append(fleet.attack_success(
                enrollment, attack_factory, workers=workers,
                lockstep=True, fused=True))
        np.testing.assert_array_equal(outcomes[0][0], outcomes[1][0])
        np.testing.assert_array_equal(outcomes[0][1], outcomes[1][1])
        assert outcomes[0][0].all()


class TestPoolPlumbing:
    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_chunk_indices_cover_range_once(self):
        blocks = chunk_indices(10, 4)
        flattened = np.concatenate(blocks)
        np.testing.assert_array_equal(flattened, np.arange(10))
        assert len(blocks) <= 4
        assert chunk_indices(2, 8) and len(chunk_indices(2, 8)) == 2
        with pytest.raises(ValueError):
            chunk_indices(4, 0)

    def test_lambda_factory_requires_single_worker(self):
        # Lambdas cannot cross the process boundary; in-process sweeps
        # keep accepting them.
        fleet, enrollment = fresh_fleet(size=2, seed=21)
        recovered, _ = fleet.attack_success(
            enrollment,
            lambda oracle, keygen, helper: SequentialPairingAttack(
                oracle, keygen, helper),
            workers=1)
        assert recovered.all()
