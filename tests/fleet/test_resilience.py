"""Fault-tolerant supervised execution: retry equivalence and hygiene.

The supervised executor's contract (``docs/resilience.md``) is that
recovery is invisible in the results: a sweep that survived injected
crashes, hangs and in-band exceptions returns arrays bitwise-equal to
the fault-free run, for every worker count and retry budget.  These
tests pin that equivalence matrix, the failure taxonomy and verdicts,
the quarantine/poison paths, the deterministic fault plans and backoff
schedules, and the shared-memory hygiene of every failure path (the CI
``chaos-smoke`` job runs this module on its own).
"""

import json
import os

import numpy as np
import pytest

from repro.core import SequentialPairingAttack
from repro.core.injection import flip_orientations
from repro.fleet import (
    ChunkFailure,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    Fleet,
    InjectedFault,
    PoisonedSweepError,
    RetryPolicy,
    Supervisor,
    faultinject,
)
from repro.fleet.parallel import (
    resolve_workers,
    run_collected,
    run_scattered,
)
from repro.keygen import SequentialPairingKeyGen
from repro.puf import ROArrayParams

PARAMS = ROArrayParams(rows=8, cols=16, sigma_noise=300e3)
TRIALS = 40
#: Watchdog generous enough for a loaded CI box, small enough that the
#: nine hang cases of the matrix stay cheap.
TIMEOUT = 1.5

#: Injection mode -> the taxonomy kind the supervisor must record.
KIND_FOR_MODE = {"crash": "crash", "hang": "timeout",
                 "raise": "exception"}


def sequential_factory():
    return SequentialPairingKeyGen(threshold=250e3)


def attack_factory(oracle, keygen, helper):
    return SequentialPairingAttack(oracle, keygen, helper)


def boundary_helpers(enrollment):
    helpers = []
    for keygen, helper, key in zip(enrollment.keygens,
                                   enrollment.helpers,
                                   enrollment.keys):
        t = keygen.sketch_for(key.size).code.t
        helpers.append(helper.with_pairing(
            flip_orientations(helper.pairing, range(1, 2 + t))))
    return helpers


def fresh_fleet(size=4, seed=4242):
    fleet = Fleet(PARAMS, size=size, seed=seed)
    enrollment = fleet.enroll(sequential_factory, seed=7)
    return fleet, enrollment


def policy_for(mode, retries, **kwargs):
    """A matrix policy: tight backoff, watchdog only when hangs can
    occur (crash/raise cases must recover without one)."""
    timeout = TIMEOUT if mode == "hang" else None
    return RetryPolicy(max_retries=retries, chunk_timeout=timeout,
                       backoff_base=0.01, backoff_cap=0.05, **kwargs)


# ----------------------------------------------------------------------
# module-level jobs for the executor-level tests (picklable)


def square_job(payload):
    return (float(payload) ** 2,)


def object_job(payload):
    return {"value": payload * 3}


def failing_job(payload):
    if payload >= 90:
        raise ValueError(f"bad payload {payload}")
    return (float(payload),)


def shm_listing():
    """The host's shared-memory directory entries (leak tripwire)."""
    try:
        return sorted(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux host
        pytest.skip("/dev/shm not available on this platform")


# ----------------------------------------------------------------------
# the retry-equivalence matrix


@pytest.fixture(scope="module")
def sweep_reference():
    fleet, enrollment = fresh_fleet()
    with faultinject.activated(None):
        return fleet.failure_rates(
            enrollment, trials=TRIALS,
            helpers=boundary_helpers(enrollment), workers=1)


@pytest.fixture(scope="module")
def campaign_reference():
    fleet, enrollment = fresh_fleet()
    with faultinject.activated(None):
        return fleet.attack_success(enrollment, attack_factory,
                                    workers=1)


class TestRetryEquivalenceMatrix:
    """Faulted supervised sweeps == fault-free sweeps, bitwise."""

    @pytest.mark.parametrize("retries", (0, 1, 2))
    @pytest.mark.parametrize("workers", (1, 2, 4))
    @pytest.mark.parametrize("mode", ("crash", "hang", "raise"))
    def test_sweep_bitwise_equal(self, mode, workers, retries,
                                 sweep_reference):
        # A size-4 sweep always dispatches as 4 single-device chunks,
        # so chunk 0 exists for every worker count.
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(chunk=0, mode=mode, attempts=(0,)),))
        supervisor = Supervisor(policy_for(mode, retries))
        fleet, enrollment = fresh_fleet()
        with faultinject.activated(plan):
            rates = fleet.failure_rates(
                enrollment, trials=TRIALS,
                helpers=boundary_helpers(enrollment),
                workers=workers, supervision=supervisor)
        np.testing.assert_array_equal(rates, sweep_reference)
        report = supervisor.last_report
        assert report.chunks == 4
        if retries == 0:
            # No retry budget: the chunk is quarantined and recovered
            # by the in-process degradation pass.
            assert report.verdict == "degraded"
            assert report.degraded == [0]
        else:
            assert report.verdict == "recovered"
            assert report.retried == 1
        assert report.failures[0].kind == KIND_FOR_MODE[mode]
        assert report.failures[0].chunk == 0

    @pytest.mark.parametrize("workers", (1, 2, 4))
    @pytest.mark.parametrize("mode", ("crash", "hang", "raise"))
    def test_campaign_bitwise_equal(self, mode, workers,
                                    campaign_reference):
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(chunk=0, mode=mode, attempts=(0,)),))
        supervisor = Supervisor(policy_for(mode, 1))
        fleet, enrollment = fresh_fleet()
        with faultinject.activated(plan):
            recovered, queries = fleet.attack_success(
                enrollment, attack_factory, workers=workers,
                supervision=supervisor)
        np.testing.assert_array_equal(recovered,
                                      campaign_reference[0])
        np.testing.assert_array_equal(queries, campaign_reference[1])
        report = supervisor.last_report
        assert report.verdict == "recovered"
        assert report.failures[0].kind == KIND_FOR_MODE[mode]

    def test_campaign_quarantine_recovers(self, campaign_reference):
        # Crash on every child attempt: only the in-process pass can
        # finish the chunk, and the numbers still match bitwise.
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(chunk=0, mode="crash", attempts=None),))
        supervisor = Supervisor(policy_for("crash", 1))
        fleet, enrollment = fresh_fleet()
        with faultinject.activated(plan):
            recovered, queries = fleet.attack_success(
                enrollment, attack_factory, workers=2,
                supervision=supervisor)
        np.testing.assert_array_equal(recovered,
                                      campaign_reference[0])
        np.testing.assert_array_equal(queries, campaign_reference[1])
        assert supervisor.last_report.verdict == "degraded"

    def test_multi_chunk_fault_mix(self, sweep_reference):
        # Three chunks failing three different ways in one sweep.
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(chunk=0, mode="crash", attempts=(0,)),
            FaultSpec(chunk=1, mode="raise", attempts=(0, 1)),
            FaultSpec(chunk=3, mode="hang", attempts=(0,))))
        supervisor = Supervisor(RetryPolicy(
            max_retries=2, chunk_timeout=TIMEOUT, backoff_base=0.01,
            backoff_cap=0.05))
        fleet, enrollment = fresh_fleet()
        with faultinject.activated(plan):
            rates = fleet.failure_rates(
                enrollment, trials=TRIALS,
                helpers=boundary_helpers(enrollment), workers=2,
                supervision=supervisor)
        np.testing.assert_array_equal(rates, sweep_reference)
        report = supervisor.last_report
        assert report.verdict == "recovered"
        assert report.counts_by_kind() == {
            "crash": 1, "exception": 2, "timeout": 1}
        assert report.retried == 4

    def test_plain_pool_ignores_fault_plan(self, sweep_reference):
        # The environment hook lives in the supervised entrypoints
        # only: an unsupervised sweep under an activated plan must run
        # fault-free (nothing would catch the fault).
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(chunk=0, mode="raise", attempts=None),))
        fleet, enrollment = fresh_fleet()
        with faultinject.activated(plan):
            rates = fleet.failure_rates(
                enrollment, trials=TRIALS,
                helpers=boundary_helpers(enrollment), workers=2)
        np.testing.assert_array_equal(rates, sweep_reference)

    def test_after_items_retry_rewrites_chunk(self):
        # Eight payloads dispatch as four 2-item chunks; chunk 0 dies
        # mid-chunk after writing its first item, so the retry must
        # hand back a fully-rewritten chunk.
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(chunk=0, mode="crash", attempts=(0,),
                      after_items=1),))
        supervisor = Supervisor(RetryPolicy(max_retries=1,
                                            backoff_base=0.01))
        payloads = list(range(3, 11))
        expected = run_scattered(square_job, payloads, (np.float64,),
                                 workers=1)
        with faultinject.activated(plan):
            observed = run_scattered(square_job, payloads,
                                     (np.float64,), workers=1,
                                     supervision=supervisor)
        np.testing.assert_array_equal(observed[0], expected[0])
        assert supervisor.last_report.verdict == "recovered"


# ----------------------------------------------------------------------
# verdicts, poison and partial results


class TestVerdicts:
    def test_clean_sweep(self):
        supervisor = Supervisor(RetryPolicy())
        with faultinject.activated(None):
            (values,) = run_scattered(square_job, [1, 2, 3, 4],
                                      (np.float64,), workers=2,
                                      supervision=supervisor)
        np.testing.assert_array_equal(values, [1.0, 4.0, 9.0, 16.0])
        report = supervisor.last_report
        assert report.verdict == "clean"
        assert not report.failures and not report.retried

    def test_poisoned_sweep_raises_structured_verdict(self):
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(chunk=0, mode="raise", attempts=None),))
        supervisor = Supervisor(RetryPolicy(max_retries=1,
                                            backoff_base=0.01))
        with faultinject.activated(plan), \
                pytest.raises(PoisonedSweepError) as excinfo:
            run_scattered(square_job, [1, 2, 3, 4], (np.float64,),
                          workers=2, supervision=supervisor)
        message = str(excinfo.value)
        assert "sweep poisoned: 1 of 4 chunk(s)" in message
        assert "quarantine" in message
        report = excinfo.value.report
        assert report.verdict == "partial"
        assert report.poisoned == [0]
        assert report.poison_failures[0].kind == "poison"
        assert "InjectedFault" in report.poison_failures[0].detail

    def test_allow_partial_scattered_fills_zeros(self):
        # Eight payloads at workers=1 -> four 2-item chunks;
        # poisoning chunk 0 zeroes exactly its two entries.
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(chunk=0, mode="raise", attempts=None),))
        supervisor = Supervisor(RetryPolicy(
            max_retries=0, backoff_base=0.01, allow_partial=True))
        payloads = list(range(1, 9))
        with faultinject.activated(plan):
            (values,) = run_scattered(square_job, payloads,
                                      (np.float64,), workers=1,
                                      supervision=supervisor)
        np.testing.assert_array_equal(values[:2], [0.0, 0.0])
        np.testing.assert_array_equal(
            values[2:], [float(p) ** 2 for p in payloads[2:]])
        assert supervisor.last_report.verdict == "partial"

    def test_allow_partial_collected_fills_none(self):
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(chunk=0, mode="raise", attempts=None),))
        supervisor = Supervisor(RetryPolicy(
            max_retries=0, backoff_base=0.01, allow_partial=True))
        payloads = list(range(1, 9))
        with faultinject.activated(plan):
            results = run_collected(object_job, payloads, workers=1,
                                    supervision=supervisor)
        assert results[:2] == [None, None]
        assert results[2:] == [{"value": p * 3}
                               for p in payloads[2:]]

    def test_timeout_failure_names_watchdog(self):
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(chunk=0, mode="hang", attempts=(0,)),))
        supervisor = Supervisor(RetryPolicy(
            max_retries=1, chunk_timeout=0.5, backoff_base=0.01))
        with faultinject.activated(plan):
            run_scattered(square_job, [1, 2, 3, 4], (np.float64,),
                          workers=2, supervision=supervisor)
        failure = supervisor.last_report.failures[0]
        assert failure.kind == "timeout"
        assert "watchdog" in failure.detail
        assert failure.pid is not None

    def test_supervisor_accounts_multiple_sweeps(self, tmp_path):
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(chunk=0, mode="raise", attempts=(0,)),))
        supervisor = Supervisor(RetryPolicy(max_retries=1,
                                            backoff_base=0.01))
        with faultinject.activated(plan):
            run_scattered(square_job, [1, 2, 3, 4], (np.float64,),
                          workers=2, supervision=supervisor)
        with faultinject.activated(None):
            run_collected(object_job, [1, 2], workers=2,
                          supervision=supervisor)
        assert len(supervisor.reports) == 2
        assert [r.verdict for r in supervisor.reports] == [
            "recovered", "clean"]
        assert len(supervisor.failures) == 1
        lines = supervisor.summary_lines()
        assert lines[0].startswith("sweep 0: recovered")
        target = supervisor.write_report(tmp_path / "failures.json")
        payload = json.loads(target.read_text())
        assert payload["sweeps"] == 2
        assert payload["counts"] == {"exception": 1}
        assert payload["reports"][0]["failures"][0]["chunk"] == 0

    def test_chunk_failure_round_trips_to_dict(self):
        failure = ChunkFailure(kind="crash", chunk=3, attempt=1,
                               pid=1234, payload_digest="abcd",
                               detail="exit code -9")
        assert failure.to_dict() == {
            "kind": "crash", "chunk": 3, "attempt": 1, "pid": 1234,
            "payload_digest": "abcd", "detail": "exit code -9"}


# ----------------------------------------------------------------------
# fault plans


class TestFaultPlan:
    def test_spec_rejects_unknown_mode(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(chunk=0, mode="meltdown")

    def test_fires_on_every_attempt_when_attempts_none(self):
        spec = FaultSpec(chunk=0, mode="raise", attempts=None)
        assert all(spec.fires_on(attempt) for attempt in range(5))
        scoped = FaultSpec(chunk=0, mode="raise", attempts=(1,))
        assert scoped.fires_on(1) and not scoped.fires_on(0)

    def test_json_round_trip(self):
        plan = FaultPlan(seed=9, faults=(
            FaultSpec(chunk=0, mode="crash", attempts=(0, 2)),
            FaultSpec(chunk=5, mode="raise", attempts=None,
                      after_items=3)))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_load_plan_inline_and_file(self, tmp_path):
        plan = FaultPlan(seed=2, faults=(
            FaultSpec(chunk=1, mode="hang"),))
        assert faultinject.load_plan(plan.to_json()) == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        assert faultinject.load_plan(str(path)) == plan

    def test_malformed_plans_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("not json at all")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json('{"faults": [{"mode": "crash"}]}')

    def test_seeded_plan_deterministic_and_prefix_stable(self):
        plan = FaultPlan.seeded(3, 16, rate=0.5)
        assert plan == FaultPlan.seeded(3, 16, rate=0.5)
        assert plan.faults  # rate 0.5 over 16 chunks: ~impossible to
        # draw zero faults from a fixed seed without us noticing here
        shorter = FaultPlan.seeded(3, 8, rate=0.5)
        assert shorter.faults == tuple(
            spec for spec in plan.faults if spec.chunk < 8)
        for spec in plan.faults:
            assert spec.attempts == (0,)

    def test_activated_installs_and_restores_hook(self):
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(chunk=2, mode="raise"),))
        before = os.environ.get(faultinject.ENV_VAR)
        with faultinject.activated(plan):
            assert faultinject.active_plan() == plan
            assert faultinject.active_spec(2, 0) == plan.faults[0]
            assert faultinject.active_spec(2, 1) is None
            assert faultinject.active_spec(0, 0) is None
            with faultinject.activated(None):
                assert faultinject.active_plan() is None
        assert os.environ.get(faultinject.ENV_VAR) == before

    def test_fire_raise_and_inprocess_semantics(self):
        with pytest.raises(InjectedFault):
            faultinject.fire(FaultSpec(chunk=0, mode="raise"))
        with pytest.raises(InjectedFault):
            faultinject.fire(FaultSpec(chunk=0, mode="raise"),
                             inprocess=True)
        # crash/hang are skipped in-process (they would take the
        # supervisor down); a no-spec fire is a no-op.
        faultinject.fire(FaultSpec(chunk=0, mode="crash"),
                         inprocess=True)
        faultinject.fire(FaultSpec(chunk=0, mode="hang"),
                         inprocess=True)
        faultinject.fire(None)


# ----------------------------------------------------------------------
# retry policy


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(chunk_timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-0.1)

    def test_backoff_schedule_deterministic_and_bounded(self):
        policy = RetryPolicy(max_retries=4, backoff_base=0.05,
                             backoff_cap=0.4, jitter_seed=11)
        twin = RetryPolicy(max_retries=4, backoff_base=0.05,
                           backoff_cap=0.4, jitter_seed=11)
        schedule = policy.schedule("feedc0de")
        assert schedule == twin.schedule("feedc0de")
        assert len(schedule) == 4
        for attempt, delay in enumerate(schedule):
            nominal = min(0.4, 0.05 * 2 ** attempt)
            assert 0.5 * nominal <= delay < 1.5 * nominal

    def test_jitter_desynchronises_chunks(self):
        policy = RetryPolicy(max_retries=1)
        assert (policy.backoff_delay("aaaa", 0)
                != policy.backoff_delay("bbbb", 0))
        other_seed = RetryPolicy(max_retries=1, jitter_seed=1)
        assert (policy.backoff_delay("aaaa", 0)
                != other_seed.backoff_delay("aaaa", 0))


# ----------------------------------------------------------------------
# pool hygiene: shared-memory leaks, picklability, worker caps


class TestPoolHygiene:
    def test_worker_exception_leaves_no_shm_segments(self):
        before = shm_listing()
        with pytest.raises(ValueError, match="bad payload"):
            run_scattered(failing_job, list(range(85, 95)),
                          (np.float64,), workers=2)
        assert shm_listing() == before

    def test_allocation_failure_disposes_earlier_buffers(self):
        # The second dtype is invalid: buffer 0 is already allocated
        # when its construction fails, and must still be unlinked.
        before = shm_listing()
        with pytest.raises(TypeError):
            run_scattered(square_job, [1, 2, 3, 4],
                          (np.float64, "no-such-dtype"), workers=2)
        assert shm_listing() == before

    def test_poisoned_supervised_sweep_leaves_no_shm_segments(self):
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(chunk=0, mode="raise", attempts=None),))
        supervisor = Supervisor(RetryPolicy(max_retries=0,
                                            backoff_base=0.01))
        before = shm_listing()
        with faultinject.activated(plan), \
                pytest.raises(PoisonedSweepError):
            run_scattered(square_job, [1, 2, 3, 4], (np.float64,),
                          workers=2, supervision=supervisor)
        assert shm_listing() == before

    def test_lambda_job_rejected_with_actionable_error(self):
        with pytest.raises(ValueError,
                           match="module-level callable"):
            run_scattered(lambda payload: (payload,), [1, 2, 3, 4],
                          (np.float64,), workers=2)

    def test_supervised_single_worker_requires_picklable(self):
        # Supervision always isolates chunks in child processes, so
        # even workers=1 needs picklable jobs.
        with pytest.raises(ValueError,
                           match="module-level callable"):
            run_scattered(lambda payload: (payload,), [1, 2],
                          (np.float64,), workers=1,
                          supervision=Supervisor())

    def test_unpicklable_payload_named_by_index(self):
        payloads = [1, 2, lambda: None, 4]
        with pytest.raises(ValueError, match="payload 2"):
            run_collected(object_job, payloads, workers=2)

    def test_resolve_workers_caps_at_payload_count(self):
        assert resolve_workers(8, count=3) == 3
        assert resolve_workers(None, count=1) == 1
        assert resolve_workers(2, count=0) == 1
        assert resolve_workers(2, count=100) == 2
