"""Lock-step campaign engine: bitwise equivalence with the scalar loop.

The contract under test (``docs/attacks.md``): executing one attack
across many devices in lock-step rounds must reproduce, per device, the
exact decisions, query counts, comparer outcomes and recovered keys of
driving that device's attack alone — for every batch composition and
worker count.
"""

import functools

import numpy as np
import pytest

from repro.core import (
    BatchOracle,
    DistillerPairingAttack,
    GroupBasedAttack,
    HelperDataOracle,
    SequentialPairingAttack,
)
from repro.fleet import (
    Fleet,
    GroupAttackFactory,
    LockstepCampaign,
    run_campaign,
    sequential_attack_factory,
)
from repro.keygen import (
    DistillerPairingKeyGen,
    GroupBasedKeyGen,
    SequentialPairingKeyGen,
)
from repro.puf import FIG6_PARAMS, ROArray, ROArrayParams

# Small geometries keep the scalar reference loops cheap; the engine
# paths exercised are identical to the full-size arrays'.
PARAMS = ROArrayParams(rows=4, cols=12)


def sequential_factory():
    return SequentialPairingKeyGen(threshold=300e3)


def build_sequential(seed):
    """One enrolled sequential-pairing device (fresh twin per call)."""
    array = ROArray(PARAMS, rng=700 + seed)
    keygen = SequentialPairingKeyGen(threshold=300e3)
    helper, key = keygen.enroll(array, rng=seed)
    return array, keygen, helper, key


def build_group(seed):
    """One enrolled group-based device (fresh twin per call)."""
    array = ROArray(FIG6_PARAMS, rng=800 + seed)
    keygen = GroupBasedKeyGen(distiller_degree=2,
                              group_threshold=120e3)
    helper, key = keygen.enroll(array, rng=seed)
    return array, keygen, helper, key


def build_distiller(seed, mode):
    """One enrolled distiller + pairing device (fresh twin per call)."""
    array = ROArray(FIG6_PARAMS, rng=900 + seed)
    kwargs = dict(k=5) if mode == "masking" else {}
    keygen = DistillerPairingKeyGen(4, 10, pairing_mode=mode, **kwargs)
    helper, key = keygen.enroll(array, rng=seed)
    return array, keygen, helper, key


class TestCampaignEquivalence:
    """run_campaign vs the per-device scalar loop, per attack family."""

    def test_sequential_paired_matches_scalar_loop(self):
        devices = 5
        scalar = []
        for seed in range(devices):
            array, keygen, helper, _ = build_sequential(seed)
            scalar.append(SequentialPairingAttack(
                HelperDataOracle(array, keygen), keygen, helper).run())
        oracles, attacks, keys = [], [], []
        for seed in range(devices):
            array, keygen, helper, key = build_sequential(seed)
            oracle = BatchOracle(array, keygen)
            oracles.append(oracle)
            attacks.append(SequentialPairingAttack(oracle, keygen,
                                                   helper))
            keys.append(key)
        lock = run_campaign(oracles, attacks)
        for reference, observed, key in zip(scalar, lock, keys):
            np.testing.assert_array_equal(reference.relations,
                                          observed.relations)
            np.testing.assert_array_equal(reference.key, observed.key)
            np.testing.assert_array_equal(observed.key, key)
            assert reference.queries == observed.queries
            # Comparer decisions, failure counts and per-comparison
            # budgets must match one for one.
            assert reference.comparisons == observed.comparisons

    def test_sequential_sprt_matches_scalar_loop(self):
        devices = 4
        scalar = []
        for seed in range(devices):
            array, keygen, helper, _ = build_sequential(seed)
            scalar.append(SequentialPairingAttack(
                HelperDataOracle(array, keygen), keygen,
                helper).run(method="sprt"))
        lanes = []
        for seed in range(devices):
            array, keygen, helper, _ = build_sequential(seed)
            oracle = BatchOracle(array, keygen)
            attack = SequentialPairingAttack(oracle, keygen, helper)
            lanes.append((oracle, attack.steps(method="sprt")))
        lock = LockstepCampaign(lanes).run()
        for reference, observed in zip(scalar, lock):
            np.testing.assert_array_equal(reference.relations,
                                          observed.relations)
            np.testing.assert_array_equal(reference.key, observed.key)
            assert reference.queries == observed.queries

    def test_group_based_matches_scalar_loop(self):
        devices = 3
        scalar = []
        for seed in range(devices):
            array, keygen, helper, _ = build_group(seed)
            scalar.append(GroupBasedAttack(
                HelperDataOracle(array, keygen), keygen, helper, 4,
                10).run())
        oracles, attacks = [], []
        for seed in range(devices):
            array, keygen, helper, _ = build_group(seed)
            oracle = BatchOracle(array, keygen)
            oracles.append(oracle)
            attacks.append(GroupBasedAttack(oracle, keygen, helper, 4,
                                            10))
        lock = run_campaign(oracles, attacks)
        for reference, observed in zip(scalar, lock):
            assert reference.orders == observed.orders
            assert reference.comparisons == observed.comparisons
            assert reference.queries == observed.queries
            np.testing.assert_array_equal(reference.key, observed.key)
            assert reference.confirmed and observed.confirmed

    @pytest.mark.parametrize("mode", ["masking", "neighbor-overlap"])
    def test_distiller_matches_scalar_loop(self, mode):
        devices = 2
        scalar = []
        for seed in range(devices):
            array, keygen, helper, _ = build_distiller(seed, mode)
            scalar.append(DistillerPairingAttack(
                HelperDataOracle(array, keygen), keygen, helper, 4, 10,
                max_joint_bits=8).run())
        oracles, attacks = [], []
        for seed in range(devices):
            array, keygen, helper, _ = build_distiller(seed, mode)
            oracle = BatchOracle(array, keygen)
            oracles.append(oracle)
            attacks.append(DistillerPairingAttack(
                oracle, keygen, helper, 4, 10, max_joint_bits=8))
        lock = run_campaign(oracles, attacks)
        for reference, observed in zip(scalar, lock):
            np.testing.assert_array_equal(reference.key, observed.key)
            assert reference.queries == observed.queries
            assert (reference.hypothesis_rounds
                    == observed.hypothesis_rounds)

    def test_single_device_campaign(self):
        # batch size 1: the lock-step scheduler degenerates to the
        # blocked scalar walk and must still match it bitwise.
        array, keygen, helper, key = build_sequential(11)
        reference = SequentialPairingAttack(
            HelperDataOracle(array, keygen), keygen, helper).run()
        array, keygen, helper, _ = build_sequential(11)
        oracle = BatchOracle(array, keygen)
        (observed,) = run_campaign(
            [oracle],
            [SequentialPairingAttack(oracle, keygen, helper)])
        np.testing.assert_array_equal(reference.key, observed.key)
        np.testing.assert_array_equal(observed.key, key)
        assert reference.queries == observed.queries
        assert reference.comparisons == observed.comparisons

    @pytest.mark.parametrize("family,build,attack", [
        ("sequential", build_sequential,
         lambda oracle, keygen, helper: SequentialPairingAttack(
             oracle, keygen, helper)),
        ("group", build_group,
         lambda oracle, keygen, helper: GroupBasedAttack(
             oracle, keygen, helper, 4, 10)),
    ])
    def test_fused_rounds_match_per_device_rounds(self, family, build,
                                                  attack):
        # Cross-device completion fusion is an execution regrouping
        # only: keys, query bills and comparer outcomes must be
        # bitwise-identical with and without it.
        outcomes = {}
        for fused in (False, True):
            devices = 3 if family == "sequential" else 2
            oracles, attacks = [], []
            for seed in range(devices):
                array, keygen, helper, _ = build(seed)
                oracle = BatchOracle(array, keygen)
                oracles.append(oracle)
                attacks.append(attack(oracle, keygen, helper))
            outcomes[fused] = run_campaign(oracles, attacks,
                                           fused=fused)
        for reference, observed in zip(outcomes[False],
                                       outcomes[True]):
            np.testing.assert_array_equal(reference.key, observed.key)
            assert reference.queries == observed.queries
            assert (getattr(reference, "comparisons", None)
                    == getattr(observed, "comparisons", None))

    def test_non_stepwise_driver_rejected(self):
        array, keygen, helper, _ = build_sequential(0)
        oracle = BatchOracle(array, keygen)
        with pytest.raises(TypeError):
            run_campaign([oracle], [object()])

    def test_lane_count_mismatch_rejected(self):
        array, keygen, helper, _ = build_sequential(0)
        oracle = BatchOracle(array, keygen)
        with pytest.raises(ValueError):
            run_campaign([oracle], [])


class TestFleetLockstep:
    """attack_success: lock-step x batch x workers invariance."""

    @pytest.fixture(scope="class")
    def reference(self):
        fleet = Fleet(PARAMS, size=8, seed=31)
        enrollment = fleet.enroll(sequential_factory, seed=6)
        return fleet.attack_success(enrollment,
                                    sequential_attack_factory,
                                    workers=1, lockstep=False)

    @pytest.mark.parametrize("fused", [True, False])
    @pytest.mark.parametrize("batch", [1, 3, 8])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_lockstep_invariance(self, reference, batch, workers,
                                 fused):
        # The acceptance matrix of the fusion PR: fused and per-device
        # lock-step rounds must both reproduce the scalar-loop
        # reference for every batch composition and worker count.
        fleet = Fleet(PARAMS, size=8, seed=31)
        enrollment = fleet.enroll(sequential_factory, seed=6)
        recovered, queries = fleet.attack_success(
            enrollment, sequential_attack_factory, workers=workers,
            lockstep=True, batch=batch, fused=fused)
        np.testing.assert_array_equal(recovered, reference[0])
        np.testing.assert_array_equal(queries, reference[1])
        assert recovered.all()

    def test_auto_detection_uses_lockstep(self):
        # The stepwise drivers are auto-detected; results match the
        # forced settings either way.
        fleet = Fleet(PARAMS, size=3, seed=32)
        enrollment = fleet.enroll(sequential_factory, seed=7)
        auto = fleet.attack_success(enrollment,
                                    sequential_attack_factory)
        fleet = Fleet(PARAMS, size=3, seed=32)
        enrollment = fleet.enroll(sequential_factory, seed=7)
        forced = fleet.attack_success(enrollment,
                                      sequential_attack_factory,
                                      lockstep=True)
        np.testing.assert_array_equal(auto[0], forced[0])
        np.testing.assert_array_equal(auto[1], forced[1])

    def test_legacy_run_only_driver_falls_back(self):
        # A driver without steps() still works through the scalar path
        # under auto detection.
        class RunOnly:
            def __init__(self, attack):
                self._attack = attack

            def run(self):
                return self._attack.run()

        def factory(oracle, keygen, helper):
            return RunOnly(SequentialPairingAttack(oracle, keygen,
                                                   helper))

        fleet = Fleet(PARAMS, size=2, seed=33)
        enrollment = fleet.enroll(sequential_factory, seed=8)
        recovered, queries = fleet.attack_success(enrollment, factory)
        assert recovered.all()
        assert (queries > 0).all()

    def test_group_attack_factory_through_fleet(self):
        fleet = Fleet(FIG6_PARAMS, size=2, seed=34)
        enrollment = fleet.enroll(
            functools.partial(GroupBasedKeyGen, distiller_degree=2,
                              group_threshold=120e3), seed=9)
        recovered, queries = fleet.attack_success(
            enrollment, GroupAttackFactory(4, 10), workers=2,
            lockstep=True)
        assert recovered.all()
        assert (queries > 0).all()

    def test_invalid_batch_rejected(self):
        fleet = Fleet(PARAMS, size=2, seed=35)
        enrollment = fleet.enroll(sequential_factory, seed=1)
        with pytest.raises(ValueError):
            fleet.attack_success(enrollment,
                                 sequential_attack_factory, batch=0)
