"""Fleet manufacture, enrollment and Monte-Carlo sweep tests."""

import numpy as np
import pytest

from repro.core import SequentialPairingAttack
from repro.fleet import Fleet
from repro.keygen import SequentialPairingKeyGen, bch_provider
from repro.puf import ROArray, ROArrayParams

PARAMS = ROArrayParams(rows=8, cols=16)


def sequential_factory():
    return SequentialPairingKeyGen(threshold=300e3)


class TestManufacture:
    def test_devices_independent_of_fleet_size(self):
        large = Fleet(PARAMS, size=8, seed=42)
        small = Fleet(PARAMS, size=3, seed=42)
        for i in range(3):
            np.testing.assert_array_equal(
                large[i].process_variation,
                small[i].process_variation)

    def test_devices_distinct(self):
        fleet = Fleet(PARAMS, size=4, seed=1)
        assert not np.array_equal(fleet[0].process_variation,
                                  fleet[1].process_variation)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            Fleet(PARAMS, size=0, seed=1)
        with pytest.raises(ValueError):
            Fleet.from_arrays([])

    def test_from_arrays(self):
        arrays = [ROArray(PARAMS, rng=i) for i in range(3)]
        fleet = Fleet.from_arrays(arrays)
        assert len(fleet) == 3
        assert list(fleet) == arrays


class TestEnrollment:
    @pytest.fixture
    def fleet(self):
        return Fleet(PARAMS, size=6, seed=42)

    def test_enrollment_reproducible(self, fleet):
        first = fleet.enroll(sequential_factory, seed=7)
        second = Fleet(PARAMS, size=6, seed=42).enroll(
            sequential_factory, seed=7)
        for a, b in zip(first.keys, second.keys):
            np.testing.assert_array_equal(a, b)

    def test_population_statistics(self, fleet):
        enrollment = fleet.enroll(sequential_factory, seed=7)
        assert len(enrollment) == 6
        assert enrollment.key_bits.min() > 0
        # Randomized storage: keys should look uniform across devices.
        assert 0.4 < enrollment.uniqueness() < 0.6
        aliasing = enrollment.bit_aliasing()
        assert aliasing.shape == (enrollment.key_matrix().shape[1],)
        assert 0.2 < aliasing.mean() < 0.8


class TestSweeps:
    @pytest.fixture
    def enrolled(self):
        fleet = Fleet(PARAMS, size=5, seed=9)
        return fleet, fleet.enroll(sequential_factory, seed=3)

    def test_nominal_failure_rates_low(self, enrolled):
        fleet, enrollment = enrolled
        rates = fleet.failure_rates(enrollment, trials=60)
        assert rates.shape == (5,)
        assert rates.max() <= 0.1

    def test_chunking_does_not_change_results(self):
        results = []
        for chunk in (7, 64, 1000):
            fleet = Fleet(PARAMS, size=3, seed=9)
            enrollment = fleet.enroll(sequential_factory, seed=3)
            results.append(fleet.failure_rates(enrollment, trials=50,
                                               chunk=chunk))
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])

    def test_helper_override(self, enrolled):
        fleet, enrollment = enrolled
        from repro.core.injection import flip_orientations

        corrupted = [h.with_pairing(flip_orientations(
            h.pairing, range(10))) for h in enrollment.helpers]
        rates = fleet.failure_rates(enrollment, trials=30,
                                    helpers=corrupted)
        assert rates.min() >= 0.9

    def test_validation(self, enrolled):
        fleet, enrollment = enrolled
        with pytest.raises(ValueError):
            fleet.failure_rates(enrollment, trials=0)
        with pytest.raises(ValueError):
            fleet.failure_rates(enrollment, trials=5, chunk=0)
        with pytest.raises(ValueError):
            fleet.failure_rates(enrollment, trials=5,
                                helpers=enrollment.helpers[:-1])

    def test_reliability_curve_degrades_with_weak_ecc(self):
        params = ROArrayParams(rows=8, cols=16, temp_slope_sigma=10e3)
        fleet = Fleet(params, size=3, seed=11)
        enrollment = fleet.enroll(
            lambda: SequentialPairingKeyGen(
                threshold=400e3, code_provider=bch_provider(1)),
            seed=0)
        curve = fleet.reliability_curve(enrollment, [25.0, 85.0],
                                        trials=30)
        assert curve.shape == (2, 3)
        assert curve[0].mean() >= curve[1].mean()
        assert curve[0].mean() >= 0.9


class TestAttackCampaign:
    def test_fleet_wide_key_recovery(self):
        fleet = Fleet(PARAMS, size=3, seed=21)
        enrollment = fleet.enroll(sequential_factory, seed=5)

        def factory(oracle, keygen, helper):
            return SequentialPairingAttack(oracle, keygen, helper)

        recovered, queries = fleet.attack_success(enrollment, factory)
        assert recovered.all()
        assert (queries > 0).all()
