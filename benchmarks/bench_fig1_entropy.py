"""E1 (paper §II / Fig. 1): RO PUF entropy budget.

The paper's point: ``N(N-1)/2`` pairwise comparisons exist but their
bits are interdependent — total entropy is only ``log2(N!)``.  The
bench tabulates both quantities over array sizes and shows how many
bits each construction actually extracts from one device.
"""

from _report import record, table

from repro.analysis import (
    extraction_summary,
    pairwise_comparisons,
    permutation_entropy,
)
from repro.keygen import (
    DistillerPairingKeyGen,
    GroupBasedKeyGen,
    SequentialPairingKeyGen,
    TempAwareKeyGen,
)
from repro.puf import ROArray, ROArrayParams


def run_experiment():
    budget_rows = []
    for n in (16, 40, 64, 128, 256, 512):
        budget_rows.append((n, pairwise_comparisons(n),
                            f"{permutation_entropy(n):.1f}"))

    params = ROArrayParams(rows=8, cols=16, temp_slope_sigma=8e3)
    array = ROArray(params, rng=1)
    bits = {}
    kg = SequentialPairingKeyGen(threshold=300e3)
    bits["sequential pairing"] = kg.enroll(array, rng=1)[1].size
    kg = GroupBasedKeyGen(group_threshold=120e3)
    bits["group-based"] = kg.enroll(array, rng=1)[1].size
    kg = DistillerPairingKeyGen(8, 16, pairing_mode="neighbor-disjoint")
    bits["distiller+disjoint"] = kg.enroll(array, rng=1)[1].size
    kg = DistillerPairingKeyGen(8, 16, pairing_mode="masking", k=5)
    bits["distiller+masking(k=5)"] = kg.enroll(array, rng=1)[1].size
    kg = TempAwareKeyGen(t_min=-10, t_max=80, threshold=150e3)
    bits["temp-aware cooperative"] = kg.enroll(array, rng=1)[1].size
    summary = extraction_summary(params.n, bits)
    return budget_rows, summary


def test_fig1_entropy_budget(benchmark):
    budget_rows, summary = benchmark.pedantic(run_experiment, rounds=1,
                                              iterations=1)
    record("E1 / Fig.1+§II — entropy budget log2(N!) vs raw comparisons",
           table(("N", "N(N-1)/2 raw bits", "log2(N!) true bits"),
                 budget_rows))
    rows = [(name, int(info["bits"]),
             f"{info['budget_bits']:.1f}",
             f"{100 * info['fraction']:.1f}%")
            for name, info in sorted(summary.items())]
    record("E1 — bits extracted per construction (8x16 device, N=128)",
           table(("construction", "key bits", "budget bits",
                  "extracted"), rows))
    # Sanity: the invariant the paper states.
    for name, info in summary.items():
        assert info["bits"] <= info["budget_bits"] + 20
