"""E3 (paper Fig. 3 / §IV-D): temperature-aware pair classification.

Fig. 3 classifies neighbour pairs as good / bad / cooperating over the
operating range.  The bench sweeps the reliability threshold ``Δf_th``
and tabulates the class populations plus crossover-interval statistics,
reproducing the qualitative picture: raising the threshold converts
good pairs into cooperating and bad ones.
"""

import numpy as np

from _report import record, table

from repro.pairing import PairClass, TempAwareCooperative
from repro.puf import ROArray, ROArrayParams


def run_experiment():
    array = ROArray(ROArrayParams(rows=8, cols=16, temp_slope_sigma=8e3),
                    rng=7)
    rows = []
    intervals = None
    for threshold in (50e3, 100e3, 150e3, 250e3, 400e3):
        scheme = TempAwareCooperative(t_min=-10, t_max=80,
                                      threshold=threshold)
        profiles = scheme.profile_pairs(array, rng=3)
        counts = {kind: 0 for kind in PairClass}
        for profile in profiles:
            counts[profile.kind] += 1
        widths = [p.t_high - p.t_low for p in profiles
                  if p.kind is PairClass.COOPERATING]
        rows.append((f"{threshold / 1e3:.0f} kHz",
                     counts[PairClass.GOOD],
                     counts[PairClass.COOPERATING],
                     counts[PairClass.BAD],
                     counts[PairClass.MARGINAL],
                     f"{np.mean(widths):.1f}" if widths else "-"))
        if threshold == 150e3:
            intervals = widths
    return rows, intervals


def test_fig3_pair_classification(benchmark):
    rows, intervals = benchmark.pedantic(run_experiment, rounds=1,
                                         iterations=1)
    record("E3 / Fig.3 — pair classification vs Δf_th "
           "(64 neighbour pairs, T ∈ [-10, 80] °C)",
           table(("Δf_th", "good", "cooperating", "bad", "marginal",
                  "mean [Tl,Th] width °C"), rows))
    # Shape: good-pair population shrinks monotonically with Δf_th.
    goods = [row[1] for row in rows]
    assert all(a >= b for a, b in zip(goods, goods[1:]))
    # Cooperating pairs exist at the operating threshold and their
    # intervals sit inside the range.
    assert intervals and all(0 < w < 90 for w in intervals)
