"""E16 (engine): fleet-scale Monte-Carlo throughput.

Exercises the batched simulation engine end-to-end: manufacture a
device population, enroll the sequential-pairing construction on every
sample, and sweep per-device failure rates under an injected
manipulation.  A slice of the workload is re-run through the scalar
per-query loop on twin devices to (a) assert the block path is
query-for-query identical and (b) record the measured speedup — the
engine's reason to exist.

The parallel section repeats one sweep with ``workers`` in {1, 2, 4}
on identically-seeded fleets and asserts the three result vectors are
bitwise-identical (the engine's worker-count-invariance contract),
recording per-worker-count wall time.
"""

import time

import numpy as np

from _report import record, table

from repro.core import BatchOracle, HelperDataOracle
from repro.core.injection import flip_orientations
from repro.fleet import Fleet
from repro.keygen import SequentialPairingKeyGen
from repro.puf import ROArrayParams

PARAMS = ROArrayParams(rows=8, cols=16, sigma_noise=300e3)
DEVICES = 8
TRIALS = 400
QUICK_DEVICES = 3
QUICK_TRIALS = 40
CHECK_TRIALS = 400
WORKER_COUNTS = (1, 2, 4)


def keygen_factory():
    return SequentialPairingKeyGen(threshold=250e3)


def boundary_helpers(enrollment):
    """Per-device helpers loaded one error past the ECC boundary."""
    helpers = []
    for keygen, helper, key in zip(enrollment.keygens,
                                   enrollment.helpers,
                                   enrollment.keys):
        t = keygen.sketch_for(key.size).code.t
        helpers.append(helper.with_pairing(
            flip_orientations(helper.pairing, range(1, 2 + t))))
    return helpers


def run_experiment(devices=DEVICES, trials=TRIALS):
    fleet = Fleet(PARAMS, size=devices, seed=4242)
    start = time.perf_counter()
    enrollment = fleet.enroll(keygen_factory, seed=7)
    enroll_s = time.perf_counter() - start

    start = time.perf_counter()
    nominal = fleet.failure_rates(enrollment, trials, chunk=256)
    boundary = fleet.failure_rates(enrollment, trials,
                                   helpers=boundary_helpers(enrollment),
                                   chunk=256)
    sweep_s = time.perf_counter() - start

    # Scalar cross-check on twin devices: same seed, same consumption.
    seq_fleet = Fleet(PARAMS, size=1, seed=4242)
    seq_enrollment = seq_fleet.enroll(keygen_factory, seed=7)
    seq_helper = boundary_helpers(seq_enrollment)[0]
    scalar_oracle = HelperDataOracle(seq_fleet[0],
                                     seq_enrollment.keygens[0])
    start = time.perf_counter()
    expected = np.array([scalar_oracle.query(seq_helper)
                         for _ in range(CHECK_TRIALS)])
    scalar_s = time.perf_counter() - start

    batch_fleet = Fleet(PARAMS, size=1, seed=4242)
    batch_enrollment = batch_fleet.enroll(keygen_factory, seed=7)
    batch_helper = boundary_helpers(batch_enrollment)[0]
    batch_oracle = BatchOracle(batch_fleet[0],
                               batch_enrollment.keygens[0])
    start = time.perf_counter()
    observed = batch_oracle.query_block(batch_helper, CHECK_TRIALS)
    batch_s = time.perf_counter() - start
    assert np.array_equal(expected, observed), \
        "fleet block path diverged from the scalar oracle"

    # Parallel section: one sweep per worker count on twin fleets.
    # Bitwise identity across worker counts is the engine's contract.
    parallel_times = []
    parallel_results = []
    for workers in WORKER_COUNTS:
        par_fleet = Fleet(PARAMS, size=devices, seed=4242)
        par_enrollment = par_fleet.enroll(keygen_factory, seed=7)
        par_helpers = boundary_helpers(par_enrollment)
        start = time.perf_counter()
        rates = par_fleet.failure_rates(par_enrollment, trials,
                                        helpers=par_helpers,
                                        chunk=256, workers=workers)
        parallel_times.append(time.perf_counter() - start)
        parallel_results.append(rates)
    for rates in parallel_results[1:]:
        assert np.array_equal(parallel_results[0], rates), \
            "workers=N diverged from the sequential fleet sweep"

    stats = (enrollment.uniqueness(), enroll_s, sweep_s, scalar_s,
             batch_s)
    return nominal, boundary, enrollment.key_bits, stats, \
        parallel_times


def test_fleet_scale(benchmark, quick):
    devices = QUICK_DEVICES if quick else DEVICES
    trials = QUICK_TRIALS if quick else TRIALS
    nominal, boundary, key_bits, stats, parallel_times = \
        benchmark.pedantic(
            run_experiment, args=(devices, trials), rounds=1,
            iterations=1)
    uniqueness, enroll_s, sweep_s, scalar_s, batch_s = stats
    throughput = 2 * devices * trials / sweep_s
    rows = [(i, int(key_bits[i]), f"{nominal[i]:.3f}",
             f"{boundary[i]:.3f}") for i in range(devices)]
    record(f"E16 — fleet failure-rate sweep ({devices} devices x "
           f"{trials} trials x 2 helper sets; key uniqueness "
           f"{uniqueness:.3f})",
           table(("device", "key bits", "P(fail) nominal",
                  "P(fail) past ECC boundary"), rows))
    speedup = scalar_s / batch_s if batch_s > 0 else float("inf")
    record("E16 — engine throughput",
           [f"enrollment: {enroll_s:.2f} s for {devices} devices",
            f"sweep: {sweep_s:.2f} s "
            f"({throughput:,.0f} reconstructions/s)",
            f"scalar oracle ({CHECK_TRIALS} queries): "
            f"{scalar_s * 1e3:.1f} ms",
            f"batched oracle (identical results): "
            f"{batch_s * 1e3:.1f} ms",
            f"speedup: {speedup:.1f}x"])
    record("E16 — parallel sweep (bitwise-identical across workers)",
           [f"workers={workers}: {elapsed:.2f} s "
            f"({devices * trials / elapsed:,.0f} reconstructions/s)"
            for workers, elapsed in zip(WORKER_COUNTS,
                                        parallel_times)])
    # One error past the correction budget: near-certain failure on
    # every device.
    assert np.all(boundary >= nominal)
    assert np.all(boundary > 0.8)
    if not quick:
        assert np.all(nominal < 0.2)
        # Regression canary only (typically ~18x); see bench_fig5.
        assert speedup >= 5.0
