"""E13 (ablation): attack cost vs ECC strength and measurement noise.

Design-choice ablations for the Fig. 5 mechanism on the sequential
pairing attack: the ECC's correction capability ``t`` sets how many
errors the attacker must inject to reach the boundary, and measurement
noise sets how sharply the two hypothesis failure rates separate.  The
shape to observe: the attack succeeds at *every* ECC strength with a
roughly constant per-bit query cost, and degrades gracefully (more
queries, still succeeding) as noise blurs the PDFs.
"""

import numpy as np

from _report import record, table

from repro.core import BatchOracle, SequentialPairingAttack
from repro.keygen import (
    SequentialPairingKeyGen,
    bch_provider,
    blockwise_provider,
)
from repro.puf import ROArray, ROArrayParams


def attack_once(sigma_noise, t, seed=0, budget=40, provider=None):
    array = ROArray(ROArrayParams(rows=8, cols=16,
                                  sigma_noise=sigma_noise),
                    rng=800 + seed)
    keygen = SequentialPairingKeyGen(
        threshold=400e3,
        code_provider=provider or bch_provider(t))
    helper, key = keygen.enroll(array, rng=seed)
    oracle = BatchOracle(array, keygen)
    nominal_failure = oracle.failure_rate(helper, 20)
    oracle.reset_query_count()
    from repro.core.framework import FailureRateComparer

    result = SequentialPairingAttack(
        oracle, keygen, helper,
        comparer=FailureRateComparer(max_queries_per_side=budget)).run()
    recovered = (result.key is not None
                 and np.array_equal(result.key, key))
    return key.size, recovered, result.queries, nominal_failure


def run_experiment(quick=False):
    ecc_rows = []
    for t in ((0, 3) if quick else (0, 1, 2, 3, 5)):
        bits, recovered, queries, nominal = attack_once(25e3, t)
        ecc_rows.append((t, bits, "yes" if recovered else "NO",
                         queries, f"{queries / bits:.1f}"))
    if not quick:
        # Multi-block ECC (paper: extension "fairly straightforward"):
        # 4 independent BCH blocks of 16 data bits each, t = 2 per
        # block.
        bits, recovered, queries, _ = attack_once(
            25e3, 2, provider=blockwise_provider(2, 16))
        ecc_rows.append(("BCH t=2 x4 blocks", bits,
                         "yes" if recovered else "NO", queries,
                         f"{queries / bits:.1f}"))
        # Maximum-likelihood decoding (RM(1,5), t=7 per block): the
        # attack switches to per-device online calibration and still
        # wins.
        from repro.ecc import BlockwiseCode, ReedMullerCode

        def rm_provider(data_bits):
            inner = ReedMullerCode(5)
            return BlockwiseCode(inner, -(-data_bits // inner.k))

        bits, recovered, queries, _ = attack_once(25e3, 7,
                                                  provider=rm_provider)
        ecc_rows.append(("RM(1,5) t=7 x11 (ML)", bits,
                         "yes" if recovered else "NO", queries,
                         f"{queries / bits:.1f}"))
    noise_rows = []
    for sigma in ((10e3, 300e3) if quick
                  else (10e3, 100e3, 200e3, 300e3)):
        # The attacker scales the per-comparison budget with the noise:
        # blurred Fig. 5 PDFs need more samples to separate.
        budget = 40 if sigma <= 200e3 else 150
        bits, recovered, queries, nominal = attack_once(sigma, 3,
                                                        budget=budget)
        noise_rows.append((f"{sigma / 1e3:.0f} kHz", bits,
                           f"{nominal:.2f}",
                           "yes" if recovered else "NO", queries,
                           f"{queries / bits:.1f}"))
    return ecc_rows, noise_rows


def test_ablation_ecc_and_noise(benchmark, quick):
    ecc_rows, noise_rows = benchmark.pedantic(run_experiment,
                                              args=(quick,), rounds=1,
                                              iterations=1)
    record("E13 — ablation: §VI-A attack vs ECC strength "
           "(sigma_noise = 25 kHz)",
           table(("ECC t", "key bits", "key recovered",
                  "oracle queries", "queries/bit"), ecc_rows))
    record("E13 — ablation: §VI-A attack vs measurement noise "
           "(BCH t = 3; the attacker raises the per-comparison budget "
           "as noise blurs the Fig. 5 PDFs)",
           table(("sigma_noise", "key bits", "nominal P(fail)",
                  "key recovered", "oracle queries", "queries/bit"),
                 noise_rows))
    # Stronger (or blockwise) ECC never rescues the construction.
    assert all(row[2] == "yes" for row in ecc_rows)
    # Graceful degradation: recovery everywhere, rising query bill.
    assert all(row[3] == "yes" for row in noise_rows)
    assert noise_rows[-1][4] > noise_rows[0][4]