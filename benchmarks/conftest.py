"""Benchmark harness configuration: print experiment tables at the end.

``--quick`` switches every bench to tiny sample counts for the CI
smoke job: the point is exercising each experiment's code path and
producing a timing/artifact JSON per PR, not statistical power, so
sample-size-sensitive assertions are relaxed in quick mode.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _report import reports  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="run benches with tiny sample counts (CI smoke mode)")


@pytest.fixture
def quick(request) -> bool:
    """Whether the bench run is in CI smoke mode."""
    return bool(request.config.getoption("--quick"))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    blocks = reports()
    if not blocks:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "reproduced paper artifacts")
    for title, lines in blocks:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", title)
        for line in lines:
            terminalreporter.write_line(line)
