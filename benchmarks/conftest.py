"""Benchmark harness configuration: print experiment tables at the end."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _report import reports  # noqa: E402


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    blocks = reports()
    if not blocks:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "reproduced paper artifacts")
    for title, lines in blocks:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", title)
        for line in lines:
            terminalreporter.write_line(line)
