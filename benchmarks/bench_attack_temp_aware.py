"""E7 (paper §VI-B): attacking the temperature-aware cooperative PUF.

Recovers the response-bit relations of all cooperating pairs via
assistant substitution at attacker-chosen temperatures, and additionally
reports two free lunches the construction hands out:

* every cooperation record publicly asserts
  ``r_coop ⊕ r_good ⊕ r_assist = 0``, so once the coop component is
  linked, the masking good pairs' bits fall out *absolutely*;
* a deterministic assistant-selection procedure leaks
  ``r_skipped != r_selected`` for every scanned-and-skipped candidate —
  with zero device queries (paper §IV-D).

The engine section times the vectorized temperature-aware batch path —
sensor reads, interval interpretation and cooperative assistance in
one NumPy pass per block — against the scalar per-query loop on twin
devices, asserting the outcomes match query for query (seeded sensor
streams make the construction's per-read sensor noise reproducible).
"""

import time

import numpy as np

from _report import record, table

from repro.core import BatchOracle, HelperDataOracle, TempAwareAttack
from repro.core.injection import break_inversions
from repro.keygen import OperatingPoint, TempAwareKeyGen
from repro.pairing import TempAwareCooperative, \
    deterministic_selection_leakage
from repro.puf import ROArray, ROArrayParams

DEVICES = 3
QUICK_DEVICES = 1
BATCH_QUERIES = 400
QUICK_BATCH_QUERIES = 60


def run_experiment(devices=DEVICES):
    rows = []
    for seed in range(devices):
        array = ROArray(ROArrayParams(rows=8, cols=16,
                                      temp_slope_sigma=8e3),
                        rng=200 + seed)
        keygen = TempAwareKeyGen(t_min=-10, t_max=80, threshold=150e3)
        helper, key = keygen.enroll(array, rng=seed)
        oracle = BatchOracle(array, keygen)
        result = TempAwareAttack(oracle, keygen, helper).run()

        n_good = len(helper.scheme.good_indices)
        coop_truth = key[n_good:]
        resolved = result.coop_relations >= 0
        correct = float(np.mean(
            result.coop_relations[resolved]
            == (coop_truth ^ coop_truth[0])[resolved])) \
            if resolved.any() else 1.0
        good_positions = {p: i for i, p
                          in enumerate(helper.scheme.good_indices)}
        good_correct = sum(
            bit == key[good_positions[p]]
            for p, bit in result.good_bits.items())
        rows.append((seed, len(coop_truth),
                     f"{100 * result.resolved_fraction:.0f}%",
                     f"{100 * correct:.0f}%",
                     f"{good_correct}/{len(result.good_bits)}",
                     result.queries))
    # Zero-query leakage of the deterministic selection policy.
    array = ROArray(ROArrayParams(rows=8, cols=16,
                                  temp_slope_sigma=8e3), rng=200)
    scheme = TempAwareCooperative(t_min=-10, t_max=80, threshold=150e3,
                                  selection="deterministic")
    det_helper, _ = scheme.enroll(array, rng=0)
    profiles = scheme.profile_pairs(array, rng=0)
    leaks = deterministic_selection_leakage(det_helper, profiles)
    leaks_correct = sum(
        profiles[skipped].reference_bit(-10)
        != profiles[selected].reference_bit(-10)
        for _, skipped, selected in leaks)
    return rows, (len(leaks), leaks_correct,
                  len(det_helper.cooperation))


def run_batch_vs_scalar(queries=BATCH_QUERIES):
    """Time the batched temp-aware path against the scalar loop.

    Twin devices, twin keygens with a shared sensor seed, an attack
    temperature inside a crossover interval (so assistance is
    exercised) and error injection at the ECC boundary (so decodes
    matter): the engineered §VI-B regime.  Returns timings plus the
    two outcome vectors for the in-bench equivalence assertion.
    """
    params = ROArrayParams(rows=8, cols=16, temp_slope_sigma=8e3)
    seq_array, batch_array = (ROArray(params, rng=321),
                              ROArray(params, rng=321))
    make_keygen = lambda: TempAwareKeyGen(  # noqa: E731
        t_min=-10, t_max=80, threshold=150e3, sensor_seed=77)
    seq_keygen, batch_keygen = make_keygen(), make_keygen()
    seq_helper, key = seq_keygen.enroll(seq_array, rng=5)
    batch_helper, _ = batch_keygen.enroll(batch_array, rng=5)

    entry = seq_helper.scheme.cooperation[0]
    temperature = 0.5 * (entry.t_low + entry.t_high)
    injected = seq_keygen.sketch_for(key.size).code.t
    seq_target = seq_helper.with_scheme(break_inversions(
        seq_helper.scheme, temperature, injected))
    batch_target = batch_helper.with_scheme(break_inversions(
        batch_helper.scheme, temperature, injected))
    op = OperatingPoint(temperature=temperature)

    scalar_oracle = HelperDataOracle(seq_array, seq_keygen)
    start = time.perf_counter()
    expected = np.array([scalar_oracle.query(seq_target, op)
                         for _ in range(queries)])
    scalar_s = time.perf_counter() - start

    batch_oracle = BatchOracle(batch_array, batch_keygen)
    start = time.perf_counter()
    observed = batch_oracle.query_block(batch_target, queries, op)
    batch_s = time.perf_counter() - start
    return expected, observed, scalar_s, batch_s


def test_attack_temp_aware(benchmark, quick):
    devices = QUICK_DEVICES if quick else DEVICES
    rows, leak_stats = benchmark.pedantic(run_experiment,
                                          args=(devices,), rounds=1,
                                          iterations=1)
    record("E7 / §VI-B — temperature-aware cooperative attack "
           f"({devices} devices, BCH t=3, batched oracle)",
           table(("device", "coop pairs", "relations resolved",
                  "relations correct", "good bits recovered",
                  "oracle queries"), rows))
    n_leaks, n_correct, n_coop = leak_stats
    record("E7 — deterministic assistant selection: zero-query leakage",
           [f"cooperating pairs: {n_coop}",
            f"leaked inequality relations: {n_leaks}",
            f"relations verified correct: {n_correct}/{n_leaks}"])
    for row in rows:
        assert row[2] == "100%" and row[3] == "100%"
    assert n_leaks > 0 and n_correct == n_leaks

    queries = QUICK_BATCH_QUERIES if quick else BATCH_QUERIES
    expected, observed, scalar_s, batch_s = run_batch_vs_scalar(queries)
    assert np.array_equal(expected, observed), \
        "temp-aware batch path diverged from the scalar evaluator"
    speedup = scalar_s / batch_s if batch_s > 0 else float("inf")
    record("E7 — temp-aware batch path vs scalar evaluator "
           f"({queries} queries, identical outcomes)",
           [f"scalar loop: {scalar_s * 1e3:.1f} ms",
            f"batched path: {batch_s * 1e3:.1f} ms",
            f"speedup: {speedup:.1f}x"])
    if not quick:
        # Regression canary only; the vectorized path is typically
        # far above this floor.
        assert speedup >= 5.0
