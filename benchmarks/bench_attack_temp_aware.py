"""E7 (paper §VI-B): attacking the temperature-aware cooperative PUF.

Recovers the response-bit relations of all cooperating pairs via
assistant substitution at attacker-chosen temperatures, and additionally
reports two free lunches the construction hands out:

* every cooperation record publicly asserts
  ``r_coop ⊕ r_good ⊕ r_assist = 0``, so once the coop component is
  linked, the masking good pairs' bits fall out *absolutely*;
* a deterministic assistant-selection procedure leaks
  ``r_skipped != r_selected`` for every scanned-and-skipped candidate —
  with zero device queries (paper §IV-D).
"""

import numpy as np

from _report import record, table

from repro.core import BatchOracle, TempAwareAttack
from repro.keygen import TempAwareKeyGen
from repro.pairing import TempAwareCooperative, \
    deterministic_selection_leakage
from repro.puf import ROArray, ROArrayParams

DEVICES = 3
QUICK_DEVICES = 1


def run_experiment(devices=DEVICES):
    rows = []
    for seed in range(devices):
        array = ROArray(ROArrayParams(rows=8, cols=16,
                                      temp_slope_sigma=8e3),
                        rng=200 + seed)
        keygen = TempAwareKeyGen(t_min=-10, t_max=80, threshold=150e3)
        helper, key = keygen.enroll(array, rng=seed)
        oracle = BatchOracle(array, keygen)
        result = TempAwareAttack(oracle, keygen, helper).run()

        n_good = len(helper.scheme.good_indices)
        coop_truth = key[n_good:]
        resolved = result.coop_relations >= 0
        correct = float(np.mean(
            result.coop_relations[resolved]
            == (coop_truth ^ coop_truth[0])[resolved])) \
            if resolved.any() else 1.0
        good_positions = {p: i for i, p
                          in enumerate(helper.scheme.good_indices)}
        good_correct = sum(
            bit == key[good_positions[p]]
            for p, bit in result.good_bits.items())
        rows.append((seed, len(coop_truth),
                     f"{100 * result.resolved_fraction:.0f}%",
                     f"{100 * correct:.0f}%",
                     f"{good_correct}/{len(result.good_bits)}",
                     result.queries))
    # Zero-query leakage of the deterministic selection policy.
    array = ROArray(ROArrayParams(rows=8, cols=16,
                                  temp_slope_sigma=8e3), rng=200)
    scheme = TempAwareCooperative(t_min=-10, t_max=80, threshold=150e3,
                                  selection="deterministic")
    det_helper, _ = scheme.enroll(array, rng=0)
    profiles = scheme.profile_pairs(array, rng=0)
    leaks = deterministic_selection_leakage(det_helper, profiles)
    leaks_correct = sum(
        profiles[skipped].reference_bit(-10)
        != profiles[selected].reference_bit(-10)
        for _, skipped, selected in leaks)
    return rows, (len(leaks), leaks_correct,
                  len(det_helper.cooperation))


def test_attack_temp_aware(benchmark, quick):
    devices = QUICK_DEVICES if quick else DEVICES
    rows, leak_stats = benchmark.pedantic(run_experiment,
                                          args=(devices,), rounds=1,
                                          iterations=1)
    record("E7 / §VI-B — temperature-aware cooperative attack "
           f"({devices} devices, BCH t=3, batched oracle)",
           table(("device", "coop pairs", "relations resolved",
                  "relations correct", "good bits recovered",
                  "oracle queries"), rows))
    n_leaks, n_correct, n_coop = leak_stats
    record("E7 — deterministic assistant selection: zero-query leakage",
           [f"cooperating pairs: {n_coop}",
            f"leaked inequality relations: {n_leaks}",
            f"relations verified correct: {n_correct}/{n_leaks}"])
    for row in rows:
        assert row[2] == "100%" and row[3] == "100%"
    assert n_leaks > 0 and n_correct == n_leaks
