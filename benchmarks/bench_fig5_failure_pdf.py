"""E5 (paper Fig. 5): distinguishing hypotheses via failure rates.

Reproduces the figure's mechanics on the sequential-pairing device:
the PDF of the error count at the ECC input for (a) nominal helper
data, (b) an H0-consistent manipulation carrying only the injected
common offset, and (c) an H1 manipulation carrying two extra errors.
The failure rate is the PDF mass beyond the correction bound ``t``;
injection shifts both hypothesis PDFs toward ``t`` until their failure
rates separate observably.

The sampling runs through the batched engine — one vectorized
measurement/evaluation pass per hypothesis — and cross-checks a slice
of it against the historical per-query loop, recording the measured
speedup alongside the reproduced figure.
"""

import time

import numpy as np

from _report import record, table

from repro.analysis import (
    ecc_failure_probability,
    pair_flip_probabilities,
)
from repro.core.injection import flip_orientations
from repro.keygen import SequentialPairingKeyGen
from repro.pairing import pair_deltas
from repro.puf import ROArray, ROArrayParams

SAMPLES = 300
QUICK_SAMPLES = 24
CHECK_SAMPLES = 100


def error_count_samples(array, keygen, helper, key, samples):
    """Error-count distribution at the ECC input, one vectorized pass."""
    freqs = array.measure_frequencies_batch(samples)
    bits = keygen.pairing.evaluate_batch(freqs, helper.pairing)
    return np.sum(bits != key[None, :], axis=1)


def error_count_samples_sequential(array, keygen, helper, key, samples):
    """The historical per-query loop, kept as the timing baseline."""
    counts = np.empty(samples, dtype=int)
    for i in range(samples):
        freqs = array.measure_frequencies()
        bits = keygen.pairing.evaluate(freqs, helper.pairing)
        counts[i] = int(np.sum(bits != key))
    return counts


def measure_speedup(keygen, helper, key, samples):
    """Batched vs sequential sampling on twin devices (same stream)."""
    params = ROArrayParams(rows=8, cols=16, sigma_noise=300e3)
    seq_array = ROArray(params, rng=99)
    batch_array = ROArray(params, rng=99)
    start = time.perf_counter()
    expected = error_count_samples_sequential(seq_array, keygen, helper,
                                              key, samples)
    sequential_s = time.perf_counter() - start
    start = time.perf_counter()
    observed = error_count_samples(batch_array, keygen, helper, key,
                                   samples)
    batched_s = time.perf_counter() - start
    assert np.array_equal(expected, observed), \
        "batched sampling diverged from the sequential loop"
    return sequential_s, batched_s


def run_experiment(samples=SAMPLES):
    array = ROArray(ROArrayParams(rows=8, cols=16, sigma_noise=300e3),
                    rng=11)
    keygen = SequentialPairingKeyGen(threshold=250e3)
    helper, key = keygen.enroll(array, rng=1)
    code = keygen.sketch_for(key.size).code
    t = code.t

    # An unequal pair position for the H1 swap (ground truth used only
    # to *construct* the showcase, as the paper's figure does).
    unequal = next(j for j in range(1, key.size) if key[j] != key[0])

    rows = []
    pdf_lines = {}
    for injected in (0, t - 1):
        injected_pairing = flip_orientations(
            helper.pairing,
            [p for p in range(key.size)
             if p not in (0, unequal)][:injected])
        h0 = helper.with_pairing(injected_pairing)
        h1 = helper.with_pairing(
            injected_pairing.with_swapped_positions(0, unequal))
        counts0 = error_count_samples(array, keygen, h0, key, samples)
        # H1 error counts are measured against the *original* key.
        counts1 = error_count_samples(array, keygen, h1, key, samples)
        fail0 = float(np.mean(counts0 > t))
        fail1 = float(np.mean(counts1 > t))
        rows.append((injected, f"{counts0.mean():.2f}",
                     f"{counts1.mean():.2f}", f"{fail0:.3f}",
                     f"{fail1:.3f}", f"{fail1 - fail0:+.3f}"))
        label = f"injected={injected}"
        top = int(max(counts0.max(), counts1.max()))
        pdf_lines[label] = [
            (k, float(np.mean(counts0 == k)),
             float(np.mean(counts1 == k))) for k in range(top + 1)]

    # Analytic nominal failure rate from per-bit flip probabilities.
    deltas = pair_deltas(array.true_frequencies(),
                         helper.pairing.pairs)
    probs = pair_flip_probabilities(deltas, 300e3)
    analytic_nominal = ecc_failure_probability(probs, t)

    timing = measure_speedup(keygen, helper, key, CHECK_SAMPLES)
    return t, rows, pdf_lines, analytic_nominal, timing


def test_fig5_failure_pdfs(benchmark, quick):
    samples = QUICK_SAMPLES if quick else SAMPLES
    t, rows, pdf_lines, analytic, timing = benchmark.pedantic(
        run_experiment, args=(samples,), rounds=1, iterations=1)
    record(f"E5 / Fig.5 — hypothesis separation (BCH t={t}, "
           f"{samples} samples per PDF; analytic nominal failure "
           f"rate {analytic:.2e})",
           table(("injected errors", "mean #err H0", "mean #err H1",
                  "P(fail) H0", "P(fail) H1", "rate gap"), rows))
    for label, pdf in pdf_lines.items():
        record(f"E5 — error-count PDF at the ECC input, {label} "
               f"(boundary t={t})",
               table(("#errors", "PDF H0", "PDF H1"),
                     [(k, f"{p0:.3f}", f"{p1:.3f}")
                      for k, p0, p1 in pdf]))
    sequential_s, batched_s = timing
    speedup = sequential_s / batched_s if batched_s > 0 else float("inf")
    record("E5 — batched vs sequential failure sampling "
           f"({CHECK_SAMPLES} samples, identical results asserted)",
           [f"sequential loop: {sequential_s * 1e3:.1f} ms",
            f"batched engine:  {batched_s * 1e3:.1f} ms",
            f"speedup:         {speedup:.1f}x"])
    # Shape assertions: without injection the hypotheses are nearly
    # indistinguishable; with the Fig. 5 offset the gap is wide.
    no_injection_gap = float(rows[0][5])
    offset_gap = float(rows[1][5])
    assert abs(no_injection_gap) < 0.3
    assert offset_gap > 0.6
    if not quick:
        # Regression canary only (typically ~25x); kept well below the
        # real ratio so timing jitter on loaded machines cannot flake.
        assert speedup >= 5.0
