"""E17 (engine): vectorized GF(2^m) decode throughput.

The decode engine's reason to exist: high-noise workloads (failure-rate
tails, reliability sweeps at temperature extremes) produce many
*distinct* error patterns per block, so the pre-engine strategy —
deduplicate and run scalar Berlekamp–Massey + Chien per distinct word —
degenerates to one full Python decode per row.  This bench builds
exactly that workload (random codewords carrying 1..t+2 random-position
errors each, so essentially every row is distinct and a fraction lies
beyond the correction radius), decodes it through both paths, asserts
bitwise equality, and records the speedup with a >=5x regression
canary.

Secondary sections time the other batch kernels against their scalar
references on the same kind of workload: the batched-Hadamard
Reed–Muller decoder and the syndrome-sketch recovery (batched
syndrome-difference solve).  Equivalence is asserted for all of them;
the canary guards the BCH engine, where the decode cost lives.
"""

import time

import numpy as np

from _report import record, table

from repro._dedup import iter_unique_rows
from repro.ecc import DecodingFailure, ReedMullerCode, design_bch
from repro.ecc.sketch import SyndromeSketch

CODE_BITS = 64
T = 5
WORDS = 2000
QUICK_WORDS = 150
RM_M = 5


def noisy_codewords(code, count, rng, max_errors=None):
    """Random codewords with 1..max_errors random-position bit flips."""
    if max_errors is None:
        max_errors = code.t + 2
    words = np.empty((count, code.n), dtype=np.uint8)
    for i in range(count):
        words[i] = code.encode(
            rng.integers(0, 2, size=code.k).astype(np.uint8))
        flips = rng.choice(code.n,
                           size=int(rng.integers(1, max_errors + 1)),
                           replace=False)
        words[i, flips] ^= 1
    return words


def scalar_decode_batch(code, words):
    """The pre-engine batch strategy: dedup + scalar decode per word."""
    codewords = np.zeros_like(words)
    ok = np.zeros(words.shape[0], dtype=bool)
    for word, rows in iter_unique_rows(words):
        try:
            codewords[rows] = code.decode(word)
        except DecodingFailure:
            continue
        ok[rows] = True
    return codewords, ok


def run_experiment(count):
    rng = np.random.default_rng(1717)
    rows = []

    # -- BCH: the canary workload --------------------------------------
    code = design_bch(CODE_BITS, T)
    words = noisy_codewords(code, count, rng)
    distinct = np.unique(words, axis=0).shape[0]
    start = time.perf_counter()
    expected, expected_ok = scalar_decode_batch(code, words)
    scalar_s = time.perf_counter() - start
    start = time.perf_counter()
    observed, observed_ok = code.decode_batch(words)
    batch_s = time.perf_counter() - start
    assert np.array_equal(expected, observed), \
        "vectorized BCH decode diverged from the scalar reference"
    assert np.array_equal(expected_ok, observed_ok), \
        "vectorized BCH failure mask diverged from the scalar reference"
    bch_speedup = scalar_s / batch_s if batch_s > 0 else float("inf")
    rows.append((repr(code), count, distinct,
                 f"{int(expected_ok.sum())}/{count}",
                 f"{scalar_s * 1e3:.1f}", f"{batch_s * 1e3:.1f}",
                 f"{bch_speedup:.1f}x"))

    # -- Reed–Muller: batched Hadamard ---------------------------------
    rm = ReedMullerCode(RM_M)
    rm_words = noisy_codewords(rm, count, rng)
    start = time.perf_counter()
    rm_expected, _ = scalar_decode_batch(rm, rm_words)
    rm_scalar_s = time.perf_counter() - start
    start = time.perf_counter()
    rm_observed, rm_ok = rm.decode_batch(rm_words)
    rm_batch_s = time.perf_counter() - start
    assert np.array_equal(rm_expected, rm_observed) and rm_ok.all(), \
        "vectorized RM decode diverged from the scalar reference"
    rm_speedup = rm_scalar_s / rm_batch_s if rm_batch_s > 0 \
        else float("inf")
    rows.append((repr(rm), count,
                 np.unique(rm_words, axis=0).shape[0],
                 f"{count}/{count}", f"{rm_scalar_s * 1e3:.1f}",
                 f"{rm_batch_s * 1e3:.1f}", f"{rm_speedup:.1f}x"))

    # -- Syndrome sketch: batched syndrome-difference solve ------------
    sketch = SyndromeSketch(design_bch(CODE_BITS, T), CODE_BITS)
    response = rng.integers(0, 2, size=CODE_BITS).astype(np.uint8)
    helper = sketch.generate(response)
    readings = np.tile(response, (count, 1))
    weights = rng.integers(1, T + 3, size=count)
    for i in range(count):
        flips = rng.choice(CODE_BITS, size=int(weights[i]),
                           replace=False)
        readings[i, flips] ^= 1
    start = time.perf_counter()
    sk_expected = np.zeros_like(readings)
    sk_expected_ok = np.zeros(count, dtype=bool)
    for reading, idx in iter_unique_rows(readings):
        try:
            sk_expected[idx] = sketch.recover(reading, helper)
        except DecodingFailure:
            continue
        sk_expected_ok[idx] = True
    sk_scalar_s = time.perf_counter() - start
    start = time.perf_counter()
    sk_observed, sk_ok = sketch.recover_batch(readings, helper)
    sk_batch_s = time.perf_counter() - start
    assert np.array_equal(sk_expected, sk_observed) \
        and np.array_equal(sk_expected_ok, sk_ok), \
        "vectorized sketch recovery diverged from the scalar reference"
    sk_speedup = sk_scalar_s / sk_batch_s if sk_batch_s > 0 \
        else float("inf")
    rows.append((f"SyndromeSketch({CODE_BITS} bits, t={T})", count,
                 np.unique(readings, axis=0).shape[0],
                 f"{int(sk_ok.sum())}/{count}",
                 f"{sk_scalar_s * 1e3:.1f}",
                 f"{sk_batch_s * 1e3:.1f}", f"{sk_speedup:.1f}x"))

    return rows, bch_speedup


def test_ecc_decode_engine(benchmark, quick):
    count = QUICK_WORDS if quick else WORDS
    rows, bch_speedup = benchmark.pedantic(run_experiment,
                                           args=(count,), rounds=1,
                                           iterations=1)
    record("E17 — vectorized decode engine vs scalar reference "
           "(high-noise workload: 1..t+2 random errors per word, "
           "bitwise equality asserted)",
           table(("decoder", "words", "distinct", "corrected",
                  "scalar ms", "batch ms", "speedup"), rows))
    if not quick:
        # Regression canary only (typically 30x+ on this workload).
        assert bch_speedup >= 5.0
