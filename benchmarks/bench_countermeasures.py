"""E14 (extension, paper §VII-C): device-side helper-data validation.

Quantifies how far the sanity checks the paper calls for actually go:

* a distiller **amplitude bound** plus measured-threshold verification
  defeats the steep-injection channel of §VI-C outright;
* cooperation-record validation blocks the interval-rewrite error
  injection of §VI-B;
* but the §VI-A pair-swap channel survives every such check — the
  swapped helper data is perfectly well-formed.  Patchwork validation
  is construction-specific; only the fuzzy-extractor architecture
  removes the channel, which is the paper's concluding advice.
"""

import numpy as np

from _report import record, table

from repro.core import (
    BatchOracle,
    GroupBasedAttack,
    SequentialPairingAttack,
    TempAwareAttack,
)
from repro.keygen import (
    GroupBasedKeyGen,
    HardenedGroupBasedKeyGen,
    HardenedTempAwareKeyGen,
    SequentialPairingKeyGen,
    TempAwareKeyGen,
)
from repro.puf import FIG6_PARAMS, ROArray, ROArrayParams


def group_based_row(hardened):
    array = ROArray(FIG6_PARAMS, rng=300)
    if hardened:
        keygen = HardenedGroupBasedKeyGen(
            rows=4, cols=10, max_polynomial_span=20e6,
            group_threshold=120e3)
    else:
        keygen = GroupBasedKeyGen(group_threshold=120e3)
    helper, key = keygen.enroll(array, rng=0)
    oracle = BatchOracle(array, keygen)
    attack = GroupBasedAttack(oracle, keygen, helper, 4, 10)
    helper0, helper1 = attack._attack_helpers(0, 1)
    rate0 = oracle.failure_rate(helper0, 6)
    rate1 = oracle.failure_rate(helper1, 6)
    informative = abs(rate0 - rate1) > 0.5
    return ("group-based §VI-C",
            "hardened" if hardened else "baseline",
            f"{rate0:.2f} / {rate1:.2f}",
            "yes" if informative else "NO")


def temp_aware_row(hardened):
    array = ROArray(ROArrayParams(rows=8, cols=16, temp_slope_sigma=8e3),
                    rng=200)
    cls = HardenedTempAwareKeyGen if hardened else TempAwareKeyGen
    keygen = cls(t_min=-10, t_max=80, threshold=150e3)
    helper, key = keygen.enroll(array, rng=0)
    oracle = BatchOracle(array, keygen)
    attack = TempAwareAttack(oracle, keygen, helper)
    # Scan candidates until one produces a split (an unequal relation);
    # on the hardened device every injection-carrying helper is
    # rejected wholesale, so no candidate ever splits.
    informative = False
    rates = "all ties"
    for candidate in range(1, len(helper.scheme.cooperation)):
        if attack._attack_temperature(0, candidate) is None:
            continue
        try:
            _, outcome = attack.test_candidate(0, candidate)
        except Exception:
            rates = "rejected"
            continue
        if outcome.decision != "tie":
            informative = True
            rates = f"{outcome.rate_a:.2f} / {outcome.rate_b:.2f}"
            break
        rates = f"{outcome.rate_a:.2f} / {outcome.rate_b:.2f}"
    return ("temp-aware §VI-B",
            "hardened" if hardened else "baseline", rates,
            "yes" if informative else "NO")


def sequential_row():
    array = ROArray(ROArrayParams(rows=8, cols=16), rng=100)
    keygen = SequentialPairingKeyGen(threshold=300e3)
    helper, key = keygen.enroll(array, rng=0)
    oracle = BatchOracle(array, keygen)
    result = SequentialPairingAttack(oracle, keygen, helper).run()
    recovered = (result.key is not None
                 and np.array_equal(result.key, key))
    return ("sequential §VI-A", "disjointness check on",
            f"key recovered in {result.queries} queries",
            "yes" if recovered else "NO")


def run_experiment():
    rows = [group_based_row(False), group_based_row(True),
            temp_aware_row(False), temp_aware_row(True),
            sequential_row()]
    return rows


def test_countermeasures(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record("E14 — device-side validation vs the §VI attacks "
           "(failure rates H0 / H1; 'channel informative' = rates "
           "separable)",
           table(("construction", "device", "observed rates",
                  "channel informative"), rows))
    by_label = {(r[0], r[1]): r[3] for r in rows}
    assert by_label[("group-based §VI-C", "baseline")] == "yes"
    assert by_label[("group-based §VI-C", "hardened")] == "NO"
    assert by_label[("temp-aware §VI-B", "baseline")] == "yes"
    assert by_label[("temp-aware §VI-B", "hardened")] == "NO"
    # The swap channel is immune to well-formedness checks.
    assert rows[-1][3] == "yes"
