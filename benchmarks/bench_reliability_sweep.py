"""E15 (extension, paper §III/§IV motivation): reliability across the
operating envelope.

The §IV selection schemes exist because raw response bits are not
reproducible over temperature.  This bench sweeps the reconstruction
temperature away from the 25 °C enrollment point and measures the key
reconstruction success rate of each construction, quantifying the
motivation story: raw (threshold-free) neighbour pairing degrades with
temperature excursion, selection schemes buy margin, and the
temperature-aware scheme holds its rate across the whole user-defined
range by design.
"""

from _report import record, table

from repro.core import BatchOracle
from repro.keygen import (
    DistillerPairingKeyGen,
    OperatingPoint,
    SequentialPairingKeyGen,
    TempAwareKeyGen,
    bch_provider,
)
from repro.puf import ROArray, ROArrayParams

TEMPERATURES = (25.0, 45.0, 65.0, 85.0)
TRIALS = 12
QUICK_TRIALS = 4


def success_rate(keygen, array, helper, key, temperature, trials):
    # Batched reconstruction: the oracle's success bit is the key-check
    # match, i.e. exact regeneration of the enrolled key.
    oracle = BatchOracle(array, keygen)
    return 1.0 - oracle.failure_rate(
        helper, trials, OperatingPoint(temperature=temperature))


def run_experiment(trials=TRIALS):
    # Strong slope spread so temperature excursions actually flip
    # marginal pairs; weak ECC (t = 1) so the differences show.
    params = ROArrayParams(rows=8, cols=16, temp_slope_sigma=10e3)
    array = ROArray(params, rng=900)

    devices = {}
    keygen = DistillerPairingKeyGen(8, 16,
                                    pairing_mode="neighbor-disjoint",
                                    code_provider=bch_provider(1))
    devices["raw neighbour pairs"] = (keygen,
                                      *keygen.enroll(array, rng=0))
    keygen = SequentialPairingKeyGen(threshold=400e3,
                                     code_provider=bch_provider(1))
    devices["sequential (Δf>400k)"] = (keygen,
                                       *keygen.enroll(array, rng=0))
    keygen = TempAwareKeyGen(t_min=15, t_max=95, threshold=150e3,
                             code_provider=bch_provider(1))
    devices["temp-aware [15,95]°C"] = (keygen,
                                       *keygen.enroll(array, rng=0))

    rows = []
    for name, (keygen, helper, key) in devices.items():
        rates = [success_rate(keygen, array, helper, key, temperature,
                              trials)
                 for temperature in TEMPERATURES]
        rows.append((name, key.size,
                     *[f"{rate:.2f}" for rate in rates]))
    return rows


def test_reliability_sweep(benchmark, quick):
    trials = QUICK_TRIALS if quick else TRIALS
    rows = benchmark.pedantic(run_experiment, args=(trials,),
                              rounds=1, iterations=1)
    record("E15 — reconstruction success vs temperature "
           f"(enrolled at 25 °C, BCH t=1, {trials} trials per point, "
           "batched reconstruction)",
           table(("construction", "key bits",
                  *[f"{t:.0f} °C" for t in TEMPERATURES]), rows))
    if quick:
        return
    by_name = {row[0]: [float(v) for v in row[2:]] for row in rows}
    # Selection-based schemes are solid at the enrollment temperature;
    # raw pairing already pays for its marginal bits even there (the
    # §III reliability motivation).
    assert all(rates[0] >= 0.7 for rates in by_name.values())
    assert by_name["sequential (Δf>400k)"][0] >= 0.9
    # The temperature-aware scheme holds its rate across its range.
    assert min(by_name["temp-aware [15,95]°C"]) >= 0.75
    # Raw neighbour pairing degrades with excursion more than the
    # selection-based schemes at the extreme point.
    assert by_name["raw neighbour pairs"][-1] <= \
        by_name["temp-aware [15,95]°C"][-1]