"""E8 (paper §VI-C / Fig. 6a): full key recovery on the group-based PUF.

The paper's illustration: a 4 x 10 array, steep quadratic injection,
repartition into attacker-determined pairs with one isolated target,
reprogrammed ECC redundancy per hypothesis.  The bench runs the complete
attack on several devices and reports key length, comparison count
(binary-insertion sort over each original group) and oracle queries.
"""

import numpy as np

from _report import record, table

from repro.core import BatchOracle, GroupBasedAttack
from repro.keygen import GroupBasedKeyGen
from repro.puf import FIG6_PARAMS, ROArray

DEVICES = 3
QUICK_DEVICES = 1


def run_experiment(devices=DEVICES):
    rows = []
    for seed in range(devices):
        array = ROArray(FIG6_PARAMS, rng=300 + seed)
        keygen = GroupBasedKeyGen(distiller_degree=2,
                                  group_threshold=120e3)
        helper, key = keygen.enroll(array, rng=seed)
        oracle = BatchOracle(array, keygen)
        attack = GroupBasedAttack(oracle, keygen, helper, rows=4,
                                  cols=10)
        result = attack.run()
        recovered = np.array_equal(result.key, key)
        rows.append((seed, str(helper.grouping.sizes), key.size,
                     "yes" if recovered else "NO",
                     "yes" if result.confirmed else "NO",
                     result.comparisons, result.queries,
                     f"{result.queries / key.size:.1f}"))
    return rows


def test_fig6a_group_based_attack(benchmark, quick):
    devices = QUICK_DEVICES if quick else DEVICES
    rows = benchmark.pedantic(run_experiment, args=(devices,),
                              rounds=1, iterations=1)
    record("E8 / Fig.6a §VI-C — group-based RO PUF full key recovery "
           f"(4x10 array, {devices} devices, BCH t=3, batched oracle)",
           table(("device", "group sizes", "key bits", "key recovered",
                  "digest confirmed", "comparisons", "oracle queries",
                  "queries/bit"), rows))
    assert all(row[3] == "yes" and row[4] == "yes" for row in rows)
