"""E18: lock-step cross-device attack campaign engine.

The paper's attack results are population claims, so the engine must
replay one attack across whole device fleets.  This bench runs the
§VI-A sequential-pairing key recovery over a multi-device campaign
three ways at ``workers=1``:

* **scalar loop** — one device at a time through the single-query
  ``HelperDataOracle`` walk (the executable equivalence reference);
* **batched loop** — one device at a time, each attack driving its own
  ``BatchOracle`` in vectorized blocks (the pre-campaign fast path);
* **lock-step campaign** — all devices advanced together in rounds by
  ``LockstepCampaign``: the frontier of pending distinguisher requests
  is fused into one vectorized bookkeeping pass per round.

Twin fleets are identically seeded, so the three executions must agree
**bitwise** on every recovered key, per-device query bill and comparer
decision — asserted in-bench before any timing is reported, alongside
a ≥5× regression canary for lock-step vs the scalar loop.  A
group-based (§VI-C, Fig. 6a) campaign section repeats the equivalence
check on the comparison-sort attack.
"""

import time

import numpy as np

from _report import record, table

from repro.core import (
    BatchOracle,
    GroupBasedAttack,
    HelperDataOracle,
    SequentialPairingAttack,
)
from repro.fleet import run_campaign
from repro.keygen import GroupBasedKeyGen, SequentialPairingKeyGen
from repro.puf import FIG6_PARAMS, ROArray, ROArrayParams

DEVICES = 16
QUICK_DEVICES = 4
GROUP_DEVICES = 3
QUICK_GROUP_DEVICES = 1

SEQ_PARAMS = ROArrayParams(rows=8, cols=16)


def _sequential_device(seed):
    array = ROArray(SEQ_PARAMS, rng=600 + seed)
    keygen = SequentialPairingKeyGen(threshold=300e3)
    helper, key = keygen.enroll(array, rng=seed)
    return array, keygen, helper, key


def _group_device(seed):
    array = ROArray(FIG6_PARAMS, rng=300 + seed)
    keygen = GroupBasedKeyGen(distiller_degree=2,
                              group_threshold=120e3)
    helper, key = keygen.enroll(array, rng=seed)
    return array, keygen, helper, key


def _signature(result):
    """Bitwise-comparable digest of one attack result."""
    key = getattr(result, "key", None)
    return (None if key is None else key.tolist(),
            int(result.queries),
            tuple(getattr(result, "comparisons", ())))


def run_sequential_campaign(devices=DEVICES):
    """Three executions of the same fleet campaign; timings + results."""
    scalar_results = []
    start = time.perf_counter()
    for seed in range(devices):
        array, keygen, helper, _ = _sequential_device(seed)
        oracle = HelperDataOracle(array, keygen)
        scalar_results.append(
            SequentialPairingAttack(oracle, keygen, helper).run())
    scalar_s = time.perf_counter() - start

    batched_results = []
    start = time.perf_counter()
    for seed in range(devices):
        array, keygen, helper, _ = _sequential_device(seed)
        oracle = BatchOracle(array, keygen)
        batched_results.append(
            SequentialPairingAttack(oracle, keygen, helper).run())
    batched_s = time.perf_counter() - start

    oracles, attacks, keys = [], [], []
    for seed in range(devices):
        array, keygen, helper, key = _sequential_device(seed)
        oracle = BatchOracle(array, keygen)
        oracles.append(oracle)
        attacks.append(SequentialPairingAttack(oracle, keygen, helper))
        keys.append(key)
    start = time.perf_counter()
    lockstep_results = run_campaign(oracles, attacks)
    lockstep_s = time.perf_counter() - start

    return (scalar_results, batched_results, lockstep_results, keys,
            scalar_s, batched_s, lockstep_s)


def run_group_campaign(devices=GROUP_DEVICES):
    """Scalar loop vs lock-step campaign on the §VI-C attack."""
    scalar_results = []
    start = time.perf_counter()
    for seed in range(devices):
        array, keygen, helper, _ = _group_device(seed)
        oracle = HelperDataOracle(array, keygen)
        scalar_results.append(GroupBasedAttack(
            oracle, keygen, helper, rows=4, cols=10).run())
    scalar_s = time.perf_counter() - start

    oracles, attacks, keys = [], [], []
    for seed in range(devices):
        array, keygen, helper, key = _group_device(seed)
        oracle = BatchOracle(array, keygen)
        oracles.append(oracle)
        attacks.append(GroupBasedAttack(oracle, keygen, helper, rows=4,
                                        cols=10))
        keys.append(key)
    start = time.perf_counter()
    lockstep_results = run_campaign(oracles, attacks)
    lockstep_s = time.perf_counter() - start
    return scalar_results, lockstep_results, keys, scalar_s, lockstep_s


def test_attack_lockstep_campaign(benchmark, quick):
    devices = QUICK_DEVICES if quick else DEVICES
    (scalar_results, batched_results, lockstep_results, keys,
     scalar_s, batched_s, lockstep_s) = benchmark.pedantic(
        run_sequential_campaign, args=(devices,), rounds=1,
        iterations=1)

    # Bitwise equivalence before any timing claims: recovered keys,
    # per-device query bills and comparer decisions must be identical
    # across all three executions.
    for reference, batched, lockstep, key in zip(
            scalar_results, batched_results, lockstep_results, keys):
        assert _signature(reference) == _signature(batched), \
            "batched per-device loop diverged from the scalar loop"
        assert _signature(reference) == _signature(lockstep), \
            "lock-step campaign diverged from the scalar loop"
        assert reference.key is not None
        assert np.array_equal(reference.key, key)

    queries = int(np.sum([r.queries for r in scalar_results]))
    speedup_lockstep = scalar_s / lockstep_s if lockstep_s else \
        float("inf")
    speedup_batched = scalar_s / batched_s if batched_s else \
        float("inf")
    record("E18 / §VI-A — lock-step campaign engine, sequential "
           f"pairing ({devices} devices, workers=1, bitwise-equal "
           "keys/queries/decisions)",
           table(("execution", "time (s)", "speedup vs scalar",
                  "devices", "oracle queries"),
                 [("scalar per-device loop", f"{scalar_s:.2f}",
                   "1.0x", devices, queries),
                  ("batched per-device loop", f"{batched_s:.2f}",
                   f"{speedup_batched:.1f}x", devices, queries),
                  ("lock-step campaign", f"{lockstep_s:.2f}",
                   f"{speedup_lockstep:.1f}x", devices, queries)]))

    grp_devices = QUICK_GROUP_DEVICES if quick else GROUP_DEVICES
    (grp_scalar, grp_lockstep, grp_keys, grp_scalar_s,
     grp_lockstep_s) = run_group_campaign(grp_devices)
    for reference, lockstep, key in zip(grp_scalar, grp_lockstep,
                                        grp_keys):
        assert reference.orders == lockstep.orders
        assert reference.queries == lockstep.queries
        assert np.array_equal(reference.key, lockstep.key)
        assert np.array_equal(reference.key, key)
    grp_speedup = grp_scalar_s / grp_lockstep_s if grp_lockstep_s \
        else float("inf")
    record("E18 / §VI-C — lock-step campaign engine, group-based "
           f"({grp_devices} devices, workers=1, bitwise-equal "
           "orders/keys/queries)",
           [f"scalar per-device loop: {grp_scalar_s:.2f} s",
            f"lock-step campaign:     {grp_lockstep_s:.2f} s",
            f"speedup: {grp_speedup:.1f}x"])

    if not quick:
        # Regression canary: the lock-step campaign must hold a wide
        # margin over the scalar reference loop on a real fleet.
        assert devices >= 16
        assert speedup_lockstep >= 5.0
