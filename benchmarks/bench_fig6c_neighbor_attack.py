"""E10 (paper §VI-D / Fig. 6c): distiller + overlapping neighbour chain.

Fig. 6c's difficulty: with an overlapping chain, one quadratic placement
cannot isolate a single bit — geometric mirror pairs collapse together
and several response bits stay "fully determined by random variations".
The paper's cure is to raise the hypothesis count (2^4 = 16 in its
illustration); the attack here enumerates ``2^u`` joint hypotheses per
placement and the bench reports the per-placement hypothesis counts.
The disjoint chain is included as the contrasting easy case.
"""

import numpy as np

from _report import record, table

from repro.core import BatchOracle, DistillerPairingAttack
from repro.keygen import DistillerPairingKeyGen
from repro.puf import FIG6_PARAMS, ROArray

DEVICES = 3
QUICK_DEVICES = 1


def run_experiment(devices=DEVICES):
    rows = []
    max_joint = 0
    for mode in ("neighbor-overlap", "neighbor-disjoint"):
        for seed in range(devices):
            array = ROArray(FIG6_PARAMS, rng=500 + seed)
            keygen = DistillerPairingKeyGen(4, 10, pairing_mode=mode)
            helper, key = keygen.enroll(array, rng=seed)
            oracle = BatchOracle(array, keygen)
            attack = DistillerPairingAttack(oracle, keygen, helper, 4,
                                            10, max_joint_bits=8)
            result = attack.run()
            recovered = np.array_equal(result.key, key)
            hypothesis_max = max(result.hypothesis_rounds)
            if mode == "neighbor-overlap":
                max_joint = max(max_joint, hypothesis_max)
            rows.append((mode, seed, key.size,
                         "yes" if recovered else "NO",
                         len(result.hypothesis_rounds),
                         hypothesis_max, result.queries))
    return rows, max_joint


def test_fig6c_neighbor_chain_attack(benchmark, quick):
    devices = QUICK_DEVICES if quick else DEVICES
    rows, max_joint = benchmark.pedantic(run_experiment,
                                         args=(devices,), rounds=1,
                                         iterations=1)
    record("E10 / Fig.6c §VI-D — distiller + neighbour chains "
           f"(4x10 array, {devices} devices each, batched oracle)",
           table(("pairing", "device", "key bits", "key recovered",
                  "placements", "max hypotheses", "oracle queries"),
                 rows))
    assert all(row[3] == "yes" for row in rows)
    # The overlap geometry forces multi-bit joint hypotheses somewhere
    # (the paper's 2^4 phenomenon, scaled to our placements).
    assert max_joint >= 2
