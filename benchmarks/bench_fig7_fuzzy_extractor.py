"""E11 (paper §VII-A / Fig. 7): the fuzzy-extractor reference solution.

The baseline the paper advocates.  The bench shows (a) it reconstructs
reliably across the operating envelope, and (b) helper-data
manipulation produces failures whose rate is *independent of secret bit
values* — flipping any code-offset payload bit deterministically shifts
the recovered response, so reconstruction fails identically everywhere;
there is no per-bit hypothesis channel of the §VI kind to exploit.
"""


from _report import record, table

from repro.core import BatchOracle
from repro.keygen import FuzzyExtractorKeyGen, OperatingPoint
from repro.puf import ROArray, ROArrayParams

QUERIES = 20
QUICK_QUERIES = 6


def run_experiment(queries=QUERIES):
    array = ROArray(ROArrayParams(rows=8, cols=16), rng=21)
    keygen = FuzzyExtractorKeyGen(8, 16, out_bits=64)
    helper, key = keygen.enroll(array, rng=5)
    oracle = BatchOracle(array, keygen)

    reliability_rows = []
    for temperature in (0.0, 25.0, 60.0):
        op = OperatingPoint(temperature=temperature)
        rate = oracle.failure_rate(helper, queries, op)
        reliability_rows.append((f"{temperature:.0f} °C",
                                 f"{1 - rate:.2f}"))

    flip_rows = []
    rates = []
    for position in (0, 13, 29, 44, 63):
        payload = helper.extractor.sketch.payload.copy()
        payload[position] ^= 1
        manipulated = helper.with_extractor(
            helper.extractor.with_sketch(
                helper.extractor.sketch.with_payload(payload)))
        rate = oracle.failure_rate(manipulated, queries)
        rates.append(rate)
        flip_rows.append((position, f"{rate:.2f}"))
    spread = max(rates) - min(rates)
    return reliability_rows, flip_rows, spread


def test_fig7_fuzzy_extractor_baseline(benchmark, quick):
    queries = QUICK_QUERIES if quick else QUERIES
    reliability_rows, flip_rows, spread = benchmark.pedantic(
        run_experiment, args=(queries,), rounds=1, iterations=1)
    record("E11 / Fig.7 §VII-A — fuzzy extractor: reconstruction "
           "success rate across temperatures",
           table(("temperature", "success rate"), reliability_rows))
    record("E11 — single payload-bit manipulation: failure rate per "
           f"position (spread = {spread:.2f}; the §VI constructions "
           "would show a secret-dependent split here)",
           table(("flipped payload bit", "failure rate"), flip_rows))
    assert all(float(rate) >= 0.9 for _, rate in reliability_rows)
    # Value-independent failures: every position fails alike.
    assert all(float(rate) >= 0.85 for _, rate in flip_rows)
    assert spread <= 0.2
