"""E2 (paper Fig. 2 / §V-A): frequency-topology decomposition.

Fig. 2 shows a measured RO frequency map as a smooth systematic trend
plus random surface roughness.  The DAC 2013 distiller removes the
trend via polynomial regression; its experiments name ``p = 2`` and
``p = 3`` as good degrees for a 16x32 array.  The bench reproduces the
decomposition: variance explained per degree, and the residual standard
deviation converging to the true process-variation sigma.
"""


from _report import record, table

from repro.distiller import EntropyDistiller
from repro.puf import DAC13_PARAMS, ROArray


def run_experiment(devices=5):
    rows = []
    for seed in range(devices):
        array = ROArray(DAC13_PARAMS, rng=seed)
        freqs = array.true_frequencies()
        process_std = array.process_variation.std()
        row = [seed]
        for degree in (1, 2, 3):
            distiller = EntropyDistiller(degree)
            explained = distiller.variance_explained(array.x, array.y,
                                                     freqs)
            _, residuals = distiller.enroll(array.x, array.y, freqs)
            row.append(f"{100 * explained:.1f}%")
            row.append(f"{residuals.std() / process_std:.3f}")
        rows.append(tuple(row))
    return rows


def test_fig2_topology_decomposition(benchmark, quick):
    rows = benchmark.pedantic(run_experiment, args=(2 if quick else 5,),
                              rounds=1, iterations=1)
    record("E2 / Fig.2 — systematic trend removal on 16x32 arrays "
           "(variance explained, residual std / process std)",
           table(("device", "p=1 expl", "p=1 resid", "p=2 expl",
                  "p=2 resid", "p=3 expl", "p=3 resid"), rows))
    # Shape check: degree 2/3 regression recovers the roughness floor
    # (residual std within 10% of true process sigma) on every device.
    for row in rows:
        assert abs(float(row[4]) - 1.0) < 0.1
        assert abs(float(row[6]) - 1.0) < 0.1
