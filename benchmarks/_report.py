"""Shared result reporting for the benchmark harness.

Each bench regenerates one paper artifact (table or figure) and records
its rows here; a ``pytest_terminal_summary`` hook in ``conftest.py``
prints every recorded table after the pytest-benchmark timing table, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
the reproduced numbers alongside the timings.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

_REPORTS: List[Tuple[str, List[str]]] = []


def record(title: str, lines: Iterable[str]) -> None:
    """Register one experiment's result block for the final summary."""
    _REPORTS.append((title, [str(line) for line in lines]))


def table(headers: Iterable[str], rows: Iterable[Iterable[object]]
          ) -> List[str]:
    """Fixed-width text table."""
    headers = [str(h) for h in headers]
    body = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*["-" * w for w in widths])]
    lines.extend(fmt.format(*row) for row in body)
    return lines


def reports() -> List[Tuple[str, List[str]]]:
    return list(_REPORTS)
