"""E6 (paper §VI-A): key recovery on the sequential pairing scheme.

Runs the full attack on several independent devices.  Two variants are
compared:

* **with injection** — the Fig. 5 common offset (``t - 1`` deterministic
  errors) pre-loads the device at the ECC boundary; a wrong hypothesis
  then overflows the decoder and the rate gap is near-deterministic.
* **without injection** — the bare position swap of the paper's first
  paragraph.  With a ``t >= 2`` ECC and realistic noise, both hypotheses
  decode successfully and the swap is *invisible*: the attack cannot
  progress.  This sharpens the paper's "to accelerate the attack" remark
  into a requirement: against a correctly provisioned ECC, error
  injection is what makes the §VI-A channel observable at all.
"""

import numpy as np

from _report import record, table

from repro.core import BatchOracle, SequentialPairingAttack
from repro.core.framework import FailureRateComparer
from repro.keygen import SequentialPairingKeyGen
from repro.puf import ROArray, ROArrayParams

DEVICES = 3
QUICK_DEVICES = 1


def run_experiment(devices=DEVICES):
    rows = []
    variants = (("paired", True), ("sprt", True), ("paired", False))
    for method, accelerated in variants:
        for seed in range(devices):
            array = ROArray(ROArrayParams(rows=8, cols=16),
                            rng=100 + seed)
            keygen = SequentialPairingKeyGen(threshold=300e3)
            helper, key = keygen.enroll(array, rng=seed)
            oracle = BatchOracle(array, keygen)
            code_t = keygen.sketch_for(key.size).code.t
            attack = SequentialPairingAttack(
                oracle, keygen, helper,
                injected_errors=(code_t - 1) if accelerated else 0,
                comparer=FailureRateComparer(max_queries_per_side=40))
            result = attack.run(method=method)
            recovered = (result.key is not None
                         and np.array_equal(result.key, key))
            relations_ok = float(np.mean(
                result.relations == (key ^ key[0])))
            rows.append((seed, method,
                         "yes" if accelerated else "no",
                         key.size, "yes" if recovered else "NO",
                         f"{100 * relations_ok:.0f}%", result.queries,
                         f"{result.queries / key.size:.1f}"))
    return rows


def test_attack_sequential_pairing(benchmark, quick):
    devices = QUICK_DEVICES if quick else DEVICES
    rows = benchmark.pedantic(run_experiment, args=(devices,),
                              rounds=1, iterations=1)
    record("E6 / §VI-A — sequential pairing key recovery "
           f"({devices} devices, randomized storage, BCH t=3, "
           "batched oracle)",
           table(("device", "distinguisher", "injection", "key bits",
                  "key recovered", "relations correct",
                  "oracle queries", "queries/bit"), rows))
    accelerated = [r for r in rows if r[2] == "yes"]
    plain = [r for r in rows if r[2] == "no"]
    # With the Fig. 5 offset: full key recovery, every device & method.
    assert all(r[4] == "yes" for r in accelerated)
    # Without it, a t=3 ECC absorbs the 2-error swap: no signal.
    assert all(r[4] == "NO" for r in plain)
    # SPRT beats the paired comparer on query count.
    paired_q = np.mean([r[6] for r in rows if r[1] == "paired"
                        and r[2] == "yes"])
    sprt_q = np.mean([r[6] for r in rows if r[1] == "sprt"])
    assert sprt_q < paired_q
