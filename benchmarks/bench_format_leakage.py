"""E12 (paper §VII-C): helper-data storage-format pitfalls.

The paper's closing argument: *"many proposals are rather vague about
their use of helper data ... subtle differences might impact security
tremendously."*  The bench quantifies two of its examples, both leaking
with **zero oracle queries**:

* sequential pairing with *sorted* pair storage: every response bit is
  1 by construction — the full key is public;
* group helper data stored in *construction order*: member order equals
  descending frequency order, i.e. the complete intra-group ranking
  (the key) is public.
"""

import numpy as np

from _report import record, table

from repro.grouping import (
    GroupingScheme,
    kendall_encode,
    order_from_frequencies,
    pack_key,
)
from repro.keygen import SequentialPairingKeyGen
from repro.puf import ROArray, ROArrayParams
from repro.puf.measurement import enroll_frequencies

DEVICES = 4
QUICK_DEVICES = 2


def run_experiment(devices=DEVICES):
    sorted_rows = []
    for seed in range(devices):
        array = ROArray(ROArrayParams(rows=8, cols=16), rng=600 + seed)
        sorted_kg = SequentialPairingKeyGen(threshold=300e3,
                                            storage_order="sorted")
        _, sorted_key = sorted_kg.enroll(array, rng=seed)
        random_kg = SequentialPairingKeyGen(threshold=300e3,
                                            storage_order="randomized")
        _, random_key = random_kg.enroll(array, rng=seed)
        # The read-only attacker's guess under sorted storage: all ones.
        guess = np.ones_like(sorted_key)
        sorted_rows.append(
            (seed, f"{100 * np.mean(guess == sorted_key):.0f}%",
             f"{100 * max(random_key.mean(), 1 - random_key.mean()):.0f}%"))

    grouping_rows = []
    for seed in range(devices):
        array = ROArray(ROArrayParams(rows=4, cols=10), rng=700 + seed)
        freqs = enroll_frequencies(array, 9, rng=seed)
        leaky = GroupingScheme(120e3,
                               storage_order="construction").enroll(freqs)
        # Read-only attacker: stored order *is* the frequency ranking,
        # so the predicted Kendall stream is all zeros.
        stream = np.concatenate([
            kendall_encode(order_from_frequencies(freqs[list(group)]))
            for group in leaky.groups])
        predicted = np.zeros_like(stream)
        key = pack_key(stream, leaky.sizes)
        guessed = pack_key(predicted, leaky.sizes)
        grouping_rows.append(
            (seed, stream.size,
             f"{100 * np.mean(stream == predicted):.0f}%",
             f"{100 * np.mean(key == guessed):.0f}%"))
    return sorted_rows, grouping_rows


def test_format_leakage(benchmark, quick):
    devices = QUICK_DEVICES if quick else DEVICES
    sorted_rows, grouping_rows = benchmark.pedantic(run_experiment,
                                                    args=(devices,),
                                                    rounds=1,
                                                    iterations=1)
    record("E12 / §VII-C — sequential pairing storage order "
           "(zero-query read-only attacker)",
           table(("device", "key guessed (sorted storage)",
                  "best guess (randomized storage)"), sorted_rows))
    record("E12 / §VII-C — grouping helper stored in construction "
           "order (zero-query read-only attacker)",
           table(("device", "Kendall bits", "bits predicted",
                  "packed key predicted"), grouping_rows))
    assert all(row[1] == "100%" for row in sorted_rows)
    assert all(row[2] == "100%" for row in grouping_rows)
    # Randomized storage leaves the attacker near chance level.
    assert all(float(row[2].rstrip("%")) <= 75 for row in sorted_rows)
