"""E19: cross-device completion fusion in lock-step campaign rounds.

PR 4's lock-step scheduler vectorized the distinguisher bookkeeping,
but each device still ran its own dedup → decode → key-check chain per
round, so the ~130× batched decode kernel only ever saw single-digit
batches.  The two-phase evaluator protocol (``docs/evaluators.md``)
lets the campaign stack the fresh distinct patterns of *every* device
sharing a code into one kernel call per round.

This bench runs the §VI-A sequential-pairing campaign over a fleet
whose devices share one BCH code (the fleet-provisioning scenario:
one reliability design, many ICs) twice at ``workers=1``:

* **per-device rounds** — the lock-step engine with ``fused=False``:
  one kernel chain per device per round (the PR 4 behaviour);
* **fused rounds** — ``fused=True``: the frontier's kernel workloads
  are grouped by kernel key and answered by one
  ``BCHCode.decode_batch`` call per distinct code per round.

Twin fleets are identically seeded, so both executions must agree
**bitwise** on every recovered key, per-device query bill and comparer
decision — asserted in-bench before any timing is reported.  The
kernel phase is accounted through ``repro.ecc.kernel.kernel_stats``;
the regression canary requires fusion to cut *round kernel time* by
≥ 1.5× on the full 32-device campaign.
"""

import time

import numpy as np

from _report import record, table

from repro.core import BatchOracle, SequentialPairingAttack
from repro.ecc import design_bch, kernel_stats
from repro.fleet import run_campaign
from repro.keygen import SequentialPairingKeyGen, fixed_code
from repro.puf import ROArray, ROArrayParams

DEVICES = 32
QUICK_DEVICES = 6

PARAMS = ROArrayParams(rows=8, cols=16)
#: One reliability design shared by the whole fleet: the smallest
#: t=3 BCH covering the largest possible pair count (64 of 128 ROs).
SHARED_CODE_PROVIDER = fixed_code(design_bch(64, 3))


def _device(seed):
    array = ROArray(PARAMS, rng=600 + seed)
    keygen = SequentialPairingKeyGen(
        threshold=300e3, code_provider=SHARED_CODE_PROVIDER)
    helper, key = keygen.enroll(array, rng=seed)
    return array, keygen, helper, key


def _signature(result):
    """Bitwise-comparable digest of one attack result."""
    key = getattr(result, "key", None)
    return (None if key is None else key.tolist(),
            int(result.queries),
            tuple(getattr(result, "comparisons", ())))


def run_fusion_campaign(devices=DEVICES):
    """The same fleet campaign with per-device and fused rounds."""
    measurements = {}
    results = {}
    for mode, fused in (("per-device", False), ("fused", True)):
        oracles, attacks, keys = [], [], []
        for seed in range(devices):
            array, keygen, helper, key = _device(seed)
            oracle = BatchOracle(array, keygen)
            oracles.append(oracle)
            attacks.append(SequentialPairingAttack(oracle, keygen,
                                                   helper))
            keys.append(key)
        kernel_stats.reset()
        start = time.perf_counter()
        results[mode] = run_campaign(oracles, attacks, fused=fused)
        measurements[mode] = (time.perf_counter() - start,
                              kernel_stats.calls, kernel_stats.rows,
                              kernel_stats.seconds)
    return results, keys, measurements


def test_campaign_fusion(benchmark, quick):
    devices = QUICK_DEVICES if quick else DEVICES
    results, keys, measurements = benchmark.pedantic(
        run_fusion_campaign, args=(devices,), rounds=1, iterations=1)

    # Bitwise equivalence before any timing claims: fused rounds must
    # reproduce the per-device rounds' keys, query bills and comparer
    # decisions exactly, and both must recover every enrolled key.
    for reference, fused, key in zip(results["per-device"],
                                     results["fused"], keys):
        assert _signature(reference) == _signature(fused), \
            "fused campaign diverged from the per-device path"
        assert reference.key is not None
        assert np.array_equal(reference.key, key)

    ref_wall, ref_calls, ref_rows, ref_kernel = \
        measurements["per-device"]
    fus_wall, fus_calls, fus_rows, fus_kernel = measurements["fused"]
    assert ref_rows == fus_rows, \
        "fusion changed the number of kernel input rows"
    kernel_speedup = (ref_kernel / fus_kernel if fus_kernel
                      else float("inf"))
    wall_speedup = ref_wall / fus_wall if fus_wall else float("inf")
    record("E19 / §VI-A — cross-device completion fusion "
           f"({devices} devices sharing one BCH code, workers=1, "
           "bitwise-equal keys/queries/decisions)",
           table(("rounds", "wall (s)", "kernel (s)", "kernel calls",
                  "kernel rows", "kernel speedup"),
                 [("per-device", f"{ref_wall:.2f}",
                   f"{ref_kernel:.3f}", ref_calls, ref_rows, "1.0x"),
                  ("fused", f"{fus_wall:.2f}", f"{fus_kernel:.3f}",
                   fus_calls, fus_rows,
                   f"{kernel_speedup:.1f}x")]))
    record("E19 — wall-clock",
           [f"per-device rounds: {ref_wall:.2f} s",
            f"fused rounds:      {fus_wall:.2f} s "
            f"({wall_speedup:.1f}x)"])

    # Fusion must strictly reduce kernel invocations whenever more
    # than one device is active per round.
    assert fus_calls < ref_calls

    if not quick:
        # Regression canary: fused rounds must cut the round kernel
        # time by a wide margin on the full fleet.
        assert devices >= 32
        assert kernel_speedup >= 1.5
