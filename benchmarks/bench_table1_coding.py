"""E4 (paper Table I): coding of oscillator frequency orders.

Regenerates the full 24-row compact + Kendall coding table for a
four-oscillator group and checks it cell-by-cell against the paper.
"""

from _report import record, table

from repro.grouping import kendall_bit_count, compact_bit_count, \
    table1_rows

#: Paper Table I, transcribed verbatim.
PAPER_ROWS = {
    "ABCD": ("00000", "000000"), "ABDC": ("00001", "000001"),
    "ACBD": ("00010", "000100"), "ACDB": ("00011", "000110"),
    "ADBC": ("00100", "000011"), "ADCB": ("00101", "000111"),
    "BACD": ("00110", "100000"), "BADC": ("00111", "100001"),
    "BCAD": ("01000", "110000"), "BCDA": ("01001", "111000"),
    "BDAC": ("01010", "101001"), "BDCA": ("01011", "111001"),
    "CABD": ("01100", "010100"), "CADB": ("01101", "010110"),
    "CBAD": ("01110", "110100"), "CBDA": ("01111", "111100"),
    "CDAB": ("10000", "011110"), "CDBA": ("10001", "111110"),
    "DABC": ("10010", "001011"), "DACB": ("10011", "001111"),
    "DBAC": ("10100", "101011"), "DBCA": ("10101", "111011"),
    "DCAB": ("10110", "011111"), "DCBA": ("10111", "111111"),
}


def run_experiment():
    rows = table1_rows()
    matches = sum(PAPER_ROWS[name] == (compact, kendall)
                  for name, compact, kendall in rows)
    return rows, matches


def test_table1_coding(benchmark):
    rows, matches = benchmark.pedantic(run_experiment, rounds=1,
                                       iterations=1)
    record(f"E4 / Table I — order coding, |G| = 4 "
           f"({matches}/24 rows match the paper exactly)",
           table(("order", "compact", "Kendall"), rows))
    record("E4 — code lengths per group size",
           table(("|G|", "compact bits ceil(log2 g!)",
                  "Kendall bits g(g-1)/2"),
                 [(g, compact_bit_count(g), kendall_bit_count(g))
                  for g in range(2, 9)]))
    assert matches == 24
