"""E9 (paper §VI-D / Fig. 6b): distiller + 1-out-of-k masking attack.

Fig. 6b's setting: k = 5 masking over a disjoint neighbour chain on a
4 x 10 array.  Each placement of the symmetric quadratic isolates the
target group's selected pair while pinning every other response bit;
two reprogrammed helper sets decide the bit.
"""

import numpy as np

from _report import record, table

from repro.core import BatchOracle, DistillerPairingAttack
from repro.keygen import DistillerPairingKeyGen
from repro.puf import FIG6_PARAMS, ROArray

DEVICES = 3
QUICK_DEVICES = 1


def run_experiment(devices=DEVICES):
    rows = []
    for seed in range(devices):
        array = ROArray(FIG6_PARAMS, rng=400 + seed)
        keygen = DistillerPairingKeyGen(4, 10, pairing_mode="masking",
                                        k=5)
        helper, key = keygen.enroll(array, rng=seed)
        oracle = BatchOracle(array, keygen)
        attack = DistillerPairingAttack(oracle, keygen, helper, 4, 10)
        result = attack.run()
        recovered = np.array_equal(result.key, key)
        rows.append((seed, key.size,
                     "yes" if recovered else "NO",
                     "yes" if result.confirmed else "NO",
                     str(result.hypothesis_rounds),
                     result.queries))
    return rows


def test_fig6b_masking_attack(benchmark, quick):
    devices = QUICK_DEVICES if quick else DEVICES
    rows = benchmark.pedantic(run_experiment, args=(devices,),
                              rounds=1, iterations=1)
    record("E9 / Fig.6b §VI-D — distiller + 1-out-of-5 masking attack "
           f"(4x10 array, {devices} devices, batched oracle)",
           table(("device", "key bits", "key recovered",
                  "digest confirmed", "hypotheses per placement",
                  "oracle queries"), rows))
    assert all(row[2] == "yes" for row in rows)
