"""E20: the attack × scheme × countermeasure warehouse matrix.

PR 6 turned the repo's scattered attack demos into a results
warehouse (``docs/warehouse.md``): every keygen scheme crossed with
every attack family and countermeasure knob, executed at fleet scale
through the lock-step/fused campaign engine, condensed into one
append-only record per cell.  This bench runs the quick matrix the CI
smoke job runs and reports it as a paper-style table — Fig. 6's three
constructions plus the §VI-A/§VI-B pairing families, with the
hardened rows showing countermeasures defeating their attacks.

Asserted before any timing is reported:

* the matrix is **seed-reproducible** — a second same-seed run
  produces bitwise-identical record identities (the warehouse's core
  contract);
* every baseline cell recovers every device's key and every hardened
  runnable cell recovers none (the paper's security claims).
"""

import numpy as np

from _report import record, table

from repro.warehouse import (
    canonical_json,
    quick_matrix,
    record_identity,
    run_matrix,
)

SEED = 0
DEVICES = 4
QUICK_DEVICES = 2


def run_quick_matrix(devices=DEVICES):
    """Two same-seed runs of the quick matrix (for the repro gate)."""
    cells = [cell for cell in quick_matrix() if cell.runnable]
    first = run_matrix(cells, "quick", SEED, devices, "bench")
    second = run_matrix(cells, "quick", SEED, devices, "bench")
    return first, second


def test_warehouse_matrix(benchmark, quick):
    devices = QUICK_DEVICES if quick else DEVICES
    first, second = benchmark.pedantic(
        run_quick_matrix, args=(devices,), rounds=1, iterations=1)

    # Reproducibility gate before any reporting: both same-seed runs
    # must agree bitwise on every record identity.
    for left, right in zip(first, second):
        assert canonical_json(record_identity(left)) == \
            canonical_json(record_identity(right)), \
            f"cell {left['cell']} is not seed-reproducible"

    rows = []
    for cell_record in first:
        assert cell_record["status"] == "ok", \
            f"{cell_record['cell']}: {cell_record['reason']}"
        security = cell_record["security"]
        expected = (0 if cell_record["countermeasure"] == "hardened"
                    else devices)
        assert security["recovered"] == expected, \
            (f"{cell_record['cell']}: {security['recovered']}/"
             f"{devices} recovered, expected {expected}")
        rows.append((cell_record["cell"],
                     f"{security['recovered']}/{devices}",
                     security["queries_total"],
                     f"{cell_record['perf']['attack_seconds']:.3f}",
                     cell_record["engine"]))
    record(f"E20 — warehouse quick matrix ({devices} devices/cell, "
           f"seed {SEED}, identities bitwise-reproducible)",
           table(("cell", "recovered", "queries", "attack (s)",
                  "engine"), rows))

    mean_queries = float(np.mean([r[2] for r in rows]))
    record("E20 — matrix summary",
           [f"runnable cells : {len(rows)}",
            f"mean query bill: {mean_queries:.0f}"])
