"""Service streaming latency: time-to-first-chunk vs full collect.

The distributed campaign service (``docs/service.md``) streams shard
results as they complete, so a consumer sees its first failure-rate
block long before the sweep finishes.  This bench runs one failure
sweep three ways on the same seeded population:

* **single-host** — the plain ``Fleet.failure_rates`` call;
* **streamed** — ``submit_sweep`` over sharded workers, recording the
  wall-clock time until the *first* ``ShardResult`` lands;
* **collect** — draining the same handle to the merged array.

The merged stream must be **bitwise-identical** to the single-host
sweep — asserted in-bench before any timing is reported (the service
contract: shards, workers and transport are pure execution knobs).
The regression canary requires the first chunk to land no later than
the full collect does.
"""

import time

import numpy as np

from _report import record, table

from repro._rng import spawn
from repro.fleet import Fleet
from repro.keygen import SequentialPairingKeyGen
from repro.puf import ROArrayParams
from repro.service import KIND_FAILURE, PopulationSpec, submit_sweep

PARAMS = ROArrayParams(rows=8, cols=16, sigma_noise=150e3)
SEED = 13

DEVICES, TRIALS, SHARDS = 12, 400, 4
QUICK_DEVICES, QUICK_TRIALS, QUICK_SHARDS = 4, 80, 2


def keygen_factory():
    return SequentialPairingKeyGen(threshold=300e3)


def run_stream_comparison(devices, trials, shards):
    """Single-host vs streamed sweep on one seeded population."""
    manufacture_rng, enroll_rng = spawn(SEED, 2)
    fleet = Fleet(PARAMS, size=devices, seed=manufacture_rng)
    enrollment = fleet.enroll(keygen_factory, seed=enroll_rng)
    start = time.perf_counter()
    reference = fleet.failure_rates(enrollment, trials=trials)
    single_host = time.perf_counter() - start

    population = PopulationSpec(params=PARAMS, devices=devices,
                                seed=SEED)
    start = time.perf_counter()
    handle = submit_sweep(population, keygen_factory, KIND_FAILURE,
                          trials=trials, shards=shards, workers=2)
    first_chunk = None
    for _ in handle:
        if first_chunk is None:
            first_chunk = time.perf_counter() - start
    merged = handle.collect()
    collect = time.perf_counter() - start
    return reference, merged, single_host, first_chunk, collect


def test_service_stream(benchmark, quick):
    devices = QUICK_DEVICES if quick else DEVICES
    trials = QUICK_TRIALS if quick else TRIALS
    shards = QUICK_SHARDS if quick else SHARDS
    reference, merged, single_host, first_chunk, collect = \
        benchmark.pedantic(run_stream_comparison,
                           args=(devices, trials, shards),
                           rounds=1, iterations=1)

    # Bitwise equivalence before any timing claims.
    np.testing.assert_array_equal(merged, reference)
    assert first_chunk is not None

    record("Service streaming — time-to-first-chunk vs collect "
           f"({devices} devices, {trials} trials, {shards} shards, "
           "2 workers, merged bitwise == single-host)",
           table(("path", "wall (s)"),
                 [("single-host sweep", f"{single_host:.3f}"),
                  ("first streamed chunk", f"{first_chunk:.3f}"),
                  ("streamed collect", f"{collect:.3f}")]))

    # Streaming must surface results no later than the full merge.
    assert first_chunk <= collect
